"""Tests for the model registry: discovery, caching, reload, quarantine."""

import json
import os
import sys

import pytest

from repro.core.export import save_psms
from repro.serve.metrics import MetricsRegistry
from repro.serve.registry import (
    ModelRegistry,
    QuarantinedModelError,
    UnknownModelError,
)
from repro.traces.variables import bool_in

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from core.test_export import fig2_psm  # noqa: E402


def write_bundle(path, variables=()):
    """Export a fig2 bundle to ``path``."""
    save_psms([fig2_psm()], path, variables=variables)


@pytest.fixture
def models_dir(tmp_path):
    write_bundle(tmp_path / "fig2.json")
    return tmp_path


class TestDiscovery:
    def test_discover_by_stem(self, models_dir):
        registry = ModelRegistry(models_dir)
        assert list(registry.discover()) == ["fig2"]

    def test_missing_dir_is_empty(self, tmp_path):
        registry = ModelRegistry(tmp_path / "nope")
        assert registry.discover() == {}

    def test_unknown_model_raises(self, models_dir):
        registry = ModelRegistry(models_dir)
        with pytest.raises(UnknownModelError):
            registry.get("other")

    def test_path_traversal_rejected(self, models_dir):
        registry = ModelRegistry(models_dir)
        with pytest.raises(UnknownModelError):
            registry.get("../fig2")
        with pytest.raises(UnknownModelError):
            registry.get(".hidden")


class TestCaching:
    def test_entry_built_once_and_cached(self, models_dir):
        metrics = MetricsRegistry()
        registry = ModelRegistry(models_dir, metrics=metrics)
        first = registry.get("fig2")
        second = registry.get("fig2")
        assert first is second
        assert second.hits == 1
        assert metrics.counter("psmgen_model_cache_hits_total", "").value() == 1
        assert (
            metrics.counter("psmgen_model_cache_misses_total", "").value() == 1
        )

    def test_version_is_content_digest(self, models_dir):
        registry = ModelRegistry(models_dir)
        entry = registry.get("fig2")
        assert len(entry.version) == 12
        assert entry.describe()["version"] == entry.version

    def test_embedded_variables_exposed(self, tmp_path):
        write_bundle(
            tmp_path / "m.json",
            variables=[bool_in("on"), bool_in("start")],
        )
        registry = ModelRegistry(tmp_path)
        assert [v.name for v in registry.get("m").variables] == [
            "on",
            "start",
        ]

    def test_lru_eviction_past_cap(self, tmp_path):
        for name in ("a", "b", "c"):
            write_bundle(tmp_path / f"{name}.json")
        metrics = MetricsRegistry()
        registry = ModelRegistry(tmp_path, cap=2, metrics=metrics)
        registry.get("a")
        registry.get("b")
        registry.get("a")  # refresh a's recency
        registry.get("c")  # evicts b, the least recently used
        assert registry.loaded_models() == ["a", "c"]
        assert (
            metrics.counter("psmgen_model_cache_evictions_total", "").value()
            == 1
        )
        # b reloads transparently on next access
        registry.get("b")
        assert "b" in registry.loaded_models()


class TestHotReload:
    def test_changed_file_reloads(self, models_dir):
        registry = ModelRegistry(models_dir)
        before = registry.get("fig2")
        path = models_dir / "fig2.json"
        write_bundle(path)
        os.utime(path, ns=(1, 1))  # force a distinct signature
        after = registry.get("fig2")
        assert after is not before

    def test_deleted_file_drops_entry(self, models_dir):
        registry = ModelRegistry(models_dir)
        registry.get("fig2")
        (models_dir / "fig2.json").unlink()
        with pytest.raises(UnknownModelError):
            registry.get("fig2")
        assert registry.loaded_models() == []

    def test_refresh_picks_up_changes(self, models_dir):
        registry = ModelRegistry(models_dir)
        before = registry.get("fig2")
        path = models_dir / "fig2.json"
        write_bundle(path)
        os.utime(path, ns=(2, 2))
        registry.refresh()
        assert registry.get("fig2") is not before


class TestQuarantine:
    def test_invalid_bundle_is_quarantined(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "psmgen-psms/v99"}))
        metrics = MetricsRegistry()
        registry = ModelRegistry(tmp_path, metrics=metrics)
        with pytest.raises(QuarantinedModelError) as excinfo:
            registry.get("bad")
        assert "psmgen-psms/v99" in excinfo.value.reason
        assert (
            metrics.counter("psmgen_model_quarantined_total", "").value() == 1
        )

    def test_quarantine_fails_fast_until_file_changes(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        metrics = MetricsRegistry()
        registry = ModelRegistry(tmp_path, metrics=metrics)
        with pytest.raises(QuarantinedModelError):
            registry.get("bad")
        with pytest.raises(QuarantinedModelError):
            registry.get("bad")
        # only the first attempt paid a load; the second failed fast
        assert (
            metrics.counter("psmgen_model_cache_misses_total", "").value() == 1
        )
        # fixing the file lifts the quarantine
        write_bundle(path)
        os.utime(path, ns=(3, 3))
        assert registry.get("bad").name == "bad"

    def test_quarantined_model_listed_with_error(self, tmp_path):
        (tmp_path / "bad.json").write_text("[]")
        registry = ModelRegistry(tmp_path)
        with pytest.raises(QuarantinedModelError):
            registry.get("bad")
        rows = registry.list_models()
        assert rows[0]["quarantined"] is True
        assert rows[0]["error"]


class TestListing:
    def test_list_mixes_loaded_and_unloaded(self, tmp_path):
        write_bundle(tmp_path / "a.json")
        write_bundle(tmp_path / "b.json")
        registry = ModelRegistry(tmp_path)
        registry.get("a")
        rows = {row["name"]: row for row in registry.list_models()}
        assert rows["a"]["psms"] == 1
        assert rows["a"]["deterministic"] is True
        assert rows["b"] == {
            "name": "b",
            "loaded": False,
            "quarantined": False,
        }


class TestCompiledRelease:
    """Compiled forms must be dropped with their entry, not leaked."""

    def dropped(self, metrics):
        return metrics.counter(
            "psmgen_model_compiled_dropped_total", ""
        ).value()

    def test_eviction_releases_compiled_form(self, tmp_path):
        for name in ("a", "b", "c"):
            write_bundle(tmp_path / f"{name}.json")
        metrics = MetricsRegistry()
        registry = ModelRegistry(tmp_path, cap=2, metrics=metrics)
        entry_a = registry.get("a")
        registry.compiled_for(entry_a)
        assert entry_a.compiled is not None
        registry.get("b")
        registry.get("c")  # evicts a, which holds a compiled form
        assert self.dropped(metrics) == 1
        assert entry_a.compiled is None
        assert entry_a.compiled_digest is None
        assert entry_a.compile_seconds == 0.0

    def test_eviction_without_compiled_form_is_not_counted(self, tmp_path):
        for name in ("a", "b", "c"):
            write_bundle(tmp_path / f"{name}.json")
        metrics = MetricsRegistry()
        registry = ModelRegistry(tmp_path, cap=2, metrics=metrics)
        registry.get("a")
        registry.get("b")
        registry.get("c")  # evicts a; a was never compiled
        assert self.dropped(metrics) == 0

    def test_reload_after_overwrite_releases_old_compiled(self, models_dir):
        metrics = MetricsRegistry()
        registry = ModelRegistry(models_dir, metrics=metrics)
        entry = registry.get("fig2")
        registry.compiled_for(entry)
        write_bundle(models_dir / "fig2.json", variables=[bool_in("x")])
        os.utime(models_dir / "fig2.json", ns=(7, 7))
        fresh = registry.get("fig2")
        assert fresh is not entry
        assert self.dropped(metrics) == 1
        assert entry.compiled is None
        # the fresh entry re-lowers lazily against its own digest
        compiled = registry.compiled_for(fresh)
        assert fresh.compiled_digest == fresh.version
        assert compiled is fresh.compiled

    def test_corrupted_reload_quarantines_and_releases(self, models_dir):
        metrics = MetricsRegistry()
        registry = ModelRegistry(models_dir, metrics=metrics)
        entry = registry.get("fig2")
        registry.compiled_for(entry)
        (models_dir / "fig2.json").write_text("{broken")
        os.utime(models_dir / "fig2.json", ns=(9, 9))
        with pytest.raises(QuarantinedModelError):
            registry.get("fig2")
        assert self.dropped(metrics) == 1
        assert entry.compiled is None
        assert entry.compile_seconds == 0.0

    def test_vanished_file_releases_compiled(self, models_dir):
        metrics = MetricsRegistry()
        registry = ModelRegistry(models_dir, metrics=metrics)
        entry = registry.get("fig2")
        registry.compiled_for(entry)
        (models_dir / "fig2.json").unlink()
        with pytest.raises(UnknownModelError):
            registry.get("fig2")
        assert self.dropped(metrics) == 1
        assert entry.compiled is None


class TestReloadEvictionRace:
    """Hot reload raced against LRU eviction under concurrent estimates.

    Two models behind a cap of 1: every estimate for one model evicts
    the other, so a bundle overwrite mid-stream exercises the reload
    path while the rewritten entry is continuously thrown out and
    rebuilt.  Every estimate must still succeed and the rewrite must be
    visible afterwards — no stale entry, no leaked compiled form.
    """

    def test_estimates_survive_reload_under_eviction_churn(self, tmp_path):
        import asyncio

        from repro.serve.batching import MicroBatcher
        from repro.traces.functional import FunctionalTrace
        from repro.traces.io import functional_trace_to_json

        def make_window(seed, instants=12):
            on = [(i + seed) % 3 != 0 for i in range(instants)]
            start = [(i + seed) % 4 == 1 for i in range(instants)]
            return functional_trace_to_json(
                FunctionalTrace(
                    [bool_in("on"), bool_in("start")],
                    {
                        "on": [int(v) for v in on],
                        "start": [int(v) for v in start],
                    },
                    name=f"w{seed}",
                )
            )

        write_bundle(tmp_path / "a.json")
        write_bundle(tmp_path / "b.json")
        metrics = MetricsRegistry()
        registry = ModelRegistry(
            tmp_path, cap=1, freshness_interval=0.0, metrics=metrics
        )
        version_before = registry.get("a").version

        async def scenario():
            batcher = MicroBatcher(
                registry, metrics=metrics, jobs=1, max_queue=64, max_batch=4
            )

            async def hammer(model):
                results = []
                for index in range(10):
                    results.append(
                        await batcher.submit(model, make_window(index))
                    )
                    await asyncio.sleep(0)
                return results

            task_a = asyncio.create_task(hammer("a"))
            task_b = asyncio.create_task(hammer("b"))
            await asyncio.sleep(0.01)
            # Overwrite "a" mid-stream: embedding variables changes the
            # content digest, so the reload is observable.
            write_bundle(
                tmp_path / "a.json",
                variables=[bool_in("on"), bool_in("start")],
            )
            results_a, results_b = await asyncio.gather(task_a, task_b)
            await batcher.aclose()
            return results_a, results_b

        results_a, results_b = asyncio.run(scenario())
        assert len(results_a) == len(results_b) == 10
        assert all("energy" in r for r in results_a + results_b)
        evictions = metrics.counter(
            "psmgen_model_cache_evictions_total", ""
        ).value()
        assert evictions >= 2  # the two models really did churn
        entry = registry.get("a")
        assert entry.version != version_before  # rewrite was picked up
        # Cap 1 still holds after the churn: fetching "a" evicted "b".
        assert list(registry._entries) == ["a"]
