"""Tests for the micro-batching executor: coalescing and backpressure."""

import asyncio
import os
import sys

import pytest

from repro.core.export import save_psms
from repro.serve.batching import MicroBatcher, QueueFullError, simulate_one
from repro.serve.metrics import MetricsRegistry
from repro.serve.registry import ModelRegistry
from repro.traces.functional import FunctionalTrace
from repro.traces.io import functional_trace_to_json
from repro.traces.variables import bool_in

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from core.test_export import fig2_psm  # noqa: E402

VARIABLES = [bool_in("on"), bool_in("start")]


def make_window(seed: int, instants: int = 16) -> dict:
    """A serialised fig2-compatible trace window."""
    on = [(i + seed) % 3 != 0 for i in range(instants)]
    start = [(i + seed) % 4 == 1 for i in range(instants)]
    trace = FunctionalTrace(
        VARIABLES,
        {"on": [int(v) for v in on], "start": [int(v) for v in start]},
        name=f"w{seed}",
    )
    return functional_trace_to_json(trace)


@pytest.fixture
def registry(tmp_path):
    save_psms([fig2_psm()], tmp_path / "fig2.json", variables=VARIABLES)
    return ModelRegistry(tmp_path)


def make_batcher(registry, metrics=None, **kwargs):
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("max_queue", 8)
    kwargs.setdefault("max_batch", 8)
    return MicroBatcher(registry, metrics=metrics, **kwargs)


def run(coro):
    """Run one async scenario to completion on a fresh loop."""
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_submits_form_one_batch(self, registry):
        metrics = MetricsRegistry()

        async def scenario():
            batcher = make_batcher(registry, metrics)
            # manual draining so the batch composition is deterministic
            batcher._ensure_drainer = lambda *args: None
            tasks = [
                asyncio.create_task(batcher.submit("fig2", make_window(i)))
                for i in range(3)
            ]
            await asyncio.sleep(0)  # let every submit enqueue its job
            assert await batcher.drain_once("fig2") == 3
            results = await asyncio.gather(*tasks)
            await batcher.aclose()
            return results

        results = run(scenario())
        assert [r["batch_size"] for r in results] == [3, 3, 3]
        size = metrics.histogram("psmgen_batch_size", "")
        assert size.count() == 1
        assert size.bucket_count(2) == 0  # the one batch was larger than 2
        assert size.bucket_count(4) == 1

    def test_batch_bounded_by_max_batch(self, registry):
        async def scenario():
            batcher = make_batcher(registry, max_batch=2, max_queue=8)
            batcher._ensure_drainer = lambda *args: None
            tasks = [
                asyncio.create_task(batcher.submit("fig2", make_window(i)))
                for i in range(5)
            ]
            await asyncio.sleep(0)
            sizes = []
            while any(not t.done() for t in tasks):
                sizes.append(await batcher.drain_once("fig2"))
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            await batcher.aclose()
            return sizes

        assert run(scenario()) == [2, 2, 1]

    def test_results_match_direct_simulation(self, registry):
        window = make_window(7)
        expected = simulate_one(registry.get("fig2"), window)

        async def scenario():
            batcher = make_batcher(registry)
            result = await batcher.submit("fig2", window)
            await batcher.aclose()
            return result

        result = run(scenario())
        assert result["estimated"] == expected["estimated"]
        assert result["energy"] == expected["energy"]
        assert result["instants"] == expected["instants"]
        assert result["batch_size"] == 1

    def test_drainer_serves_without_manual_drain(self, registry):
        async def scenario():
            batcher = make_batcher(registry)
            results = await asyncio.gather(
                *[batcher.submit("fig2", make_window(i)) for i in range(4)]
            )
            await batcher.aclose()
            return results

        results = run(scenario())
        assert len(results) == 4
        assert all(r["instants"] == 16 for r in results)


class TestBackpressure:
    def test_queue_overflow_raises_queue_full(self, registry):
        metrics = MetricsRegistry()

        async def scenario():
            batcher = make_batcher(registry, metrics, max_queue=2)
            batcher._ensure_drainer = lambda *args: None
            tasks = [
                asyncio.create_task(batcher.submit("fig2", make_window(i)))
                for i in range(4)
            ]
            await asyncio.sleep(0)
            failures = []
            for task in tasks:
                if task.done() and task.exception() is not None:
                    failures.append(task.exception())
                    continue
            while await batcher.drain_once("fig2"):
                await asyncio.sleep(0)
            await asyncio.gather(*tasks, return_exceptions=True)
            await batcher.aclose()
            return failures

        failures = run(scenario())
        assert len(failures) == 2
        assert all(isinstance(f, QueueFullError) for f in failures)
        assert all(f.retry_after >= 1 for f in failures)
        rejected = metrics.counter("psmgen_rejected_total", "", ("reason",))
        assert rejected.value(reason="queue_full") == 2

    def test_retry_after_is_bounded(self, registry):
        async def scenario():
            batcher = make_batcher(registry)
            batcher._batch_ewma["fig2"] = 1e9  # pathological smoothing
            return batcher.retry_after("fig2")

        assert 1 <= run(scenario()) <= 30


class TestErrors:
    def test_simulation_error_propagates_to_submitter(self, registry):
        async def scenario():
            batcher = make_batcher(registry)
            try:
                with pytest.raises(Exception):
                    await batcher.submit("fig2", {"bogus": True})
            finally:
                await batcher.aclose()

        run(scenario())

    def test_close_fails_pending_jobs(self, registry):
        async def scenario():
            batcher = make_batcher(registry)
            batcher._ensure_drainer = lambda *args: None
            task = asyncio.create_task(
                batcher.submit("fig2", make_window(0))
            )
            await asyncio.sleep(0)
            await batcher.aclose()
            with pytest.raises(RuntimeError):
                await task

        run(scenario())


class TestProcessMode:
    def test_process_mode_matches_thread_mode(self, registry):
        window = make_window(3)
        expected = simulate_one(registry.get("fig2"), window)

        async def scenario():
            batcher = make_batcher(registry, jobs=2)
            if batcher.mode != "process":
                await batcher.aclose()
                pytest.skip("process pool unavailable in this environment")
            try:
                return await batcher.submit("fig2", window)
            finally:
                await batcher.aclose()

        result = run(scenario())
        assert result["estimated"] == expected["estimated"]
        assert result["energy"] == expected["energy"]


class TestQueueDepthMetrics:
    """Queue depth + batch occupancy exposed for the cluster router."""

    def test_occupancy_histogram_records_fill_fraction(self, registry):
        metrics = MetricsRegistry()

        async def scenario():
            batcher = make_batcher(registry, metrics, max_batch=4)
            batcher._ensure_drainer = lambda *args: None
            tasks = [
                asyncio.create_task(batcher.submit("fig2", make_window(i)))
                for i in range(2)
            ]
            await asyncio.sleep(0)
            await batcher.drain_once("fig2")  # 2 of 4 slots -> 0.5
            await asyncio.gather(*tasks)
            await batcher.aclose()

        run(scenario())
        occupancy = metrics.histogram("psmgen_batch_occupancy", "")
        assert occupancy.count() == 1
        assert occupancy.bucket_count(0.5) == 1
        assert occupancy.bucket_count(0.375) == 0

    def test_pending_gauge_tracks_queue(self, registry):
        metrics = MetricsRegistry()

        async def scenario():
            batcher = make_batcher(registry, metrics)
            batcher._ensure_drainer = lambda *args: None
            tasks = [
                asyncio.create_task(batcher.submit("fig2", make_window(i)))
                for i in range(3)
            ]
            await asyncio.sleep(0)
            queued = batcher.pending()
            gauge = metrics.gauge("psmgen_pending_total", "").value()
            await batcher.drain_once("fig2")
            await asyncio.gather(*tasks)
            drained = batcher.pending()
            await batcher.aclose()
            return queued, gauge, drained

        queued, gauge, drained = run(scenario())
        assert queued == 3
        assert gauge == 3.0
        assert drained == 0


class TestDrain:
    """Graceful-shutdown support: wait out queued micro-batches."""

    def test_drain_idle_batcher_is_immediate(self, registry):
        async def scenario():
            batcher = make_batcher(registry)
            drained = await batcher.drain(0.001)
            await batcher.aclose()
            return drained

        assert run(scenario()) is True

    def test_drain_waits_for_queued_jobs(self, registry):
        async def scenario():
            batcher = make_batcher(registry)
            tasks = [
                asyncio.create_task(batcher.submit("fig2", make_window(i)))
                for i in range(4)
            ]
            await asyncio.sleep(0)
            drained = await batcher.drain(5.0)
            results = await asyncio.gather(*tasks)
            await batcher.aclose()
            return drained, results

        drained, results = run(scenario())
        assert drained is True
        assert len(results) == 4

    def test_drain_deadline_reports_failure(self, registry):
        async def scenario():
            batcher = make_batcher(registry)
            batcher._ensure_drainer = lambda *args: None  # nobody drains
            task = asyncio.create_task(
                batcher.submit("fig2", make_window(0))
            )
            await asyncio.sleep(0)
            drained = await batcher.drain(0.05)
            pending = batcher.pending()
            await batcher.aclose()
            with pytest.raises(RuntimeError):
                await task
            return drained, pending

        drained, pending = run(scenario())
        assert drained is False
        assert pending == 1
