"""Tests for the multi-worker cluster: routing, fan-out, supervision.

Runs the cluster on the in-process backend — every "worker" is a full
:class:`PsmServer` with its own registry and micro-batcher on the test
loop — so routing, replica fan-out, metrics aggregation and the
kill/rebalance path are exercised deterministically without real
processes (those are covered by ``tests/integration/test_cluster_e2e``).
"""

import asyncio
import json
import os
import sys

import pytest

from repro.core.export import save_psms
from repro.serve.cluster import (
    ClusterConfig,
    HotTracker,
    ServeCluster,
    aggregate_expositions,
)
from repro.serve.loadgen import http_request_json
from repro.serve.metrics import find_sample, parse_prometheus
from repro.traces.functional import FunctionalTrace
from repro.traces.io import functional_trace_to_json
from repro.traces.variables import bool_in

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from core.test_export import fig2_psm  # noqa: E402

VARIABLES = [bool_in("on"), bool_in("start")]
MODELS = ("alpha", "beta", "gamma")


def make_window(seed: int, instants: int = 16) -> dict:
    on = [(i + seed) % 3 != 0 for i in range(instants)]
    start = [(i + seed) % 4 == 1 for i in range(instants)]
    trace = FunctionalTrace(
        VARIABLES,
        {"on": [int(v) for v in on], "start": [int(v) for v in start]},
        name=f"w{seed}",
    )
    return functional_trace_to_json(trace)


@pytest.fixture
def models_dir(tmp_path):
    for name in MODELS:
        save_psms([fig2_psm()], tmp_path / f"{name}.json", variables=VARIABLES)
    return tmp_path


def make_cluster(models_dir, workers=3, **config):
    config.setdefault("vnodes", 16)
    return ServeCluster(
        models_dir,
        config=ClusterConfig(workers=workers, **config),
        backend="inproc",
    )


async def estimate(port, model, seed=0):
    status, headers, data = await http_request_json(
        "127.0.0.1",
        port,
        "POST",
        "/v1/estimate",
        {"model": model, "trace": make_window(seed)},
    )
    payload = json.loads(data) if data else {}
    return status, headers.get("x-psm-worker"), payload


def run(coro):
    return asyncio.run(coro)


class TestRouting:
    def test_estimates_route_to_ring_primary(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir)
            await cluster.start()
            try:
                ring = cluster.supervisor.ring
                for model in MODELS:
                    status, worker, payload = await estimate(
                        cluster.port, model
                    )
                    assert status == 200
                    assert worker == ring.lookup(model)
                    assert payload["model"] == model
                    assert "energy" in payload
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_same_model_sticks_to_one_worker(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir)
            await cluster.start()
            try:
                served = set()
                for index in range(8):
                    status, worker, _ = await estimate(
                        cluster.port, "alpha", seed=index
                    )
                    assert status == 200
                    served.add(worker)
                assert len(served) == 1
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_missing_model_key_is_400(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir)
            await cluster.start()
            try:
                status, _, data = await http_request_json(
                    "127.0.0.1",
                    cluster.port,
                    "POST",
                    "/v1/estimate",
                    {"trace": make_window(0)},
                )
                assert status == 400
                assert "model" in json.loads(data)["error"]
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_unknown_model_propagates_worker_404(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir)
            await cluster.start()
            try:
                status, worker, payload = await estimate(
                    cluster.port, "nonexistent"
                )
                assert status == 404
                assert worker is not None  # a worker answered
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_no_ready_workers_is_503(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=1)
            await cluster.start()
            try:
                await cluster.supervisor.kill_worker("w0", respawn=False)
                status, _, data = await http_request_json(
                    "127.0.0.1",
                    cluster.port,
                    "POST",
                    "/v1/estimate",
                    {"model": "alpha", "trace": make_window(0)},
                )
                assert status == 503
                assert "no ready worker" in json.loads(data)["error"]
            finally:
                await cluster.shutdown(5.0)

        run(scenario())


class TestReplicaFanOut:
    def test_hot_model_spreads_over_replica_set(self, models_dir):
        async def scenario():
            # hot_depth=0 makes every model hot immediately, so the
            # pick-2 balancer routes across the k=2 replica set.
            cluster = make_cluster(
                models_dir, workers=3, replicas_hot=2, hot_depth=0
            )
            await cluster.start()
            try:
                replica_set = set(
                    cluster.supervisor.ring.preference("alpha", 2)
                )
                served = set()
                for index in range(24):
                    status, worker, _ = await estimate(
                        cluster.port, "alpha", seed=index
                    )
                    assert status == 200
                    served.add(worker)
                assert served == replica_set
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_cold_model_does_not_fan_out(self, models_dir):
        async def scenario():
            cluster = make_cluster(
                models_dir, workers=3, replicas_hot=2, hot_rps=10_000.0
            )
            await cluster.start()
            try:
                served = {
                    (await estimate(cluster.port, "alpha", seed=index))[1]
                    for index in range(12)
                }
                assert len(served) == 1
            finally:
                await cluster.shutdown(5.0)

        run(scenario())


class TestSupervision:
    def test_kill_rebalances_and_traffic_survives(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=3)
            await cluster.start()
            try:
                ring = cluster.supervisor.ring
                victim = ring.lookup("alpha")
                baseline = (await estimate(cluster.port, "alpha"))[2]
                await cluster.supervisor.kill_worker(victim, respawn=False)
                assert victim not in ring
                for index in range(6):
                    status, worker, payload = await estimate(
                        cluster.port, "alpha", seed=0
                    )
                    assert status == 200
                    assert worker != victim
                    # Bit-identical result from the successor worker.
                    assert payload == baseline or payload["energy"] == (
                        baseline["energy"]
                    )
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_kill_updates_ring_share_and_up_gauges(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=2)
            await cluster.start()
            try:
                await cluster.supervisor.kill_worker("w1", respawn=False)
                rendered = cluster.metrics.render()
                samples = parse_prometheus(rendered)
                assert find_sample(
                    samples, "psmgen_worker_up", worker="w1"
                ) == 0.0
                assert find_sample(
                    samples, "psmgen_ring_share", worker="w1"
                ) == 0.0
                assert find_sample(
                    samples, "psmgen_ring_share", worker="w0"
                ) == pytest.approx(1.0)
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_inproc_respawn_rejoins_ring(self, models_dir):
        async def scenario():
            cluster = make_cluster(
                models_dir, workers=2, restart_backoff=0.05
            )
            await cluster.start()
            try:
                await cluster.supervisor.kill_worker("w0", respawn=True)
                for _ in range(100):
                    if cluster.supervisor.workers["w0"].ready:
                        break
                    await asyncio.sleep(0.05)
                assert cluster.supervisor.workers["w0"].ready
                assert "w0" in cluster.supervisor.ring
                assert cluster.supervisor.workers["w0"].restarts == 1
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_shutdown_drains_cleanly(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=2)
            await cluster.start()
            status, _, _ = await estimate(cluster.port, "alpha")
            assert status == 200
            assert await cluster.shutdown(5.0) is True

        run(scenario())


class TestAggregation:
    def test_metrics_gain_worker_labels(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=2)
            await cluster.start()
            try:
                for model in MODELS:
                    await estimate(cluster.port, model)
                status, _, data = await http_request_json(
                    "127.0.0.1", cluster.port, "GET", "/metrics"
                )
                assert status == 200
                text = data.decode()
                assert 'worker="w0"' in text
                assert 'worker="w1"' in text
                assert "psmgen_router_requests_total" in text
                assert "psmgen_ring_share" in text
                assert "psmgen_batch_occupancy" in text
                # HELP/TYPE emitted once per metric despite two workers.
                assert text.count("# TYPE psmgen_requests_total ") == 1
                samples = parse_prometheus(text)
                served = [
                    value
                    for block, value in samples.get(
                        "psmgen_requests_total", {}
                    ).items()
                    if 'endpoint="estimate"' in block
                ]
                assert sum(served) == len(MODELS)
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_healthz_reports_cluster_state(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=2)
            await cluster.start()
            try:
                status, _, data = await http_request_json(
                    "127.0.0.1", cluster.port, "GET", "/healthz"
                )
                health = json.loads(data)
                assert status == 200
                assert health["status"] == "ok"
                assert health["role"] == "router"
                assert health["ready"] == 2
                assert set(health["workers"]) == {"w0", "w1"}
                assert sum(health["ring"].values()) == pytest.approx(1.0)
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_models_view_merges_workers(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=2)
            await cluster.start()
            try:
                await estimate(cluster.port, "alpha")
                status, _, data = await http_request_json(
                    "127.0.0.1", cluster.port, "GET", "/v1/models"
                )
                merged = json.loads(data)
                assert status == 200
                assert [m["name"] for m in merged["models"]] == sorted(
                    MODELS
                )
                assert merged["workers"] == 2
                loaded = [
                    m for m in merged["models"] if m.get("version")
                ]
                assert loaded and all("worker" in m for m in loaded)
            finally:
                await cluster.shutdown(5.0)

        run(scenario())


class TestHotTracker:
    def test_rate_crossing_threshold_turns_hot(self):
        tracker = HotTracker(hot_rps=5.0, hot_depth=100, replicas_hot=3)
        for tick in range(20):
            tracker.note("m", 10.0 + tick * 0.05)  # 20 rps into bucket 10
        tracker.note("m", 11.0)  # bucket rolls, rate folds in
        assert tracker.rate("m") == pytest.approx(10.0)
        assert tracker.replicas("m") == 3

    def test_cold_model_keeps_single_replica(self):
        tracker = HotTracker(hot_rps=5.0, hot_depth=100, replicas_hot=3)
        tracker.note("m", 10.0)
        tracker.note("m", 11.0)
        assert tracker.replicas("m") == 1

    def test_queue_depth_triggers_fan_out(self):
        tracker = HotTracker(hot_rps=1e9, hot_depth=4, replicas_hot=2)
        tracker.inflight["m"] = 4
        assert tracker.replicas("m") == 2

    def test_hysteresis_holds_until_half_threshold(self):
        tracker = HotTracker(hot_rps=8.0, hot_depth=100, replicas_hot=2)
        tracker._rate["m"] = 10.0
        assert tracker.replicas("m") == 2  # hot
        tracker._rate["m"] = 6.0  # below threshold, above half
        assert tracker.replicas("m") == 2  # still hot
        tracker._rate["m"] = 3.0  # below half: cools
        assert tracker.replicas("m") == 1

    def test_idle_gap_decays_rate(self):
        tracker = HotTracker(hot_rps=5.0, hot_depth=100, replicas_hot=2)
        for tick in range(16):
            tracker.note("m", 10.0 + tick * 0.05)
        tracker.note("m", 20.0)  # nine empty buckets in between
        assert tracker.rate("m") < 1.0

    def test_hot_models_listed(self):
        tracker = HotTracker(hot_rps=1.0, hot_depth=100, replicas_hot=2)
        tracker._rate["a"] = 5.0
        tracker.replicas("a")
        assert tracker.hot_models() == ["a"]


class TestAggregateExpositions:
    def test_injects_worker_label(self):
        merged = aggregate_expositions(
            {"w0": "# HELP m h\n# TYPE m counter\nm 1\n"}
        )
        assert 'm{worker="w0"} 1' in merged

    def test_existing_labels_survive(self):
        merged = aggregate_expositions(
            {"w1": '# HELP m h\n# TYPE m counter\nm{a="b"} 2\n'}
        )
        assert 'm{worker="w1",a="b"} 2' in merged

    def test_metadata_deduped_and_samples_grouped(self):
        section = "# HELP m h\n# TYPE m counter\nm 1\n"
        merged = aggregate_expositions({"w0": section, "w1": section})
        assert merged.count("# HELP m h") == 1
        assert merged.count("# TYPE m counter") == 1
        lines = merged.strip().splitlines()
        assert lines[2:] == ['m{worker="w0"} 1', 'm{worker="w1"} 1']

    def test_empty_input_is_empty(self):
        assert aggregate_expositions({}) == ""
