"""Tests for the loadgen client: percentile math and report schema."""

import pytest

from repro.serve.loadgen import (
    SCHEMA,
    format_report,
    latency_summary,
    percentile,
    validate_loadgen,
)


class TestPercentile:
    def test_single_sample(self):
        assert percentile([4.2], 99) == 4.2

    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        values = [5, 1, 3, 2, 4]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 5

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_unsorted_input_ok(self):
        assert percentile([9, 1, 5], 50) == 5


class TestLatencySummary:
    def test_converts_to_milliseconds(self):
        summary = latency_summary([0.001, 0.002, 0.003])
        assert summary["p50"] == 2.0
        assert summary["mean"] == 2.0
        assert summary["max"] == 3.0

    def test_empty_sample_is_zeros(self):
        summary = latency_summary([])
        assert summary == {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "mean": 0.0,
            "max": 0.0,
        }


def sample_report() -> dict:
    """A minimal well-formed ``psmgen-loadgen/v1`` payload."""
    return {
        "schema": SCHEMA,
        "model": "fig2",
        "target_rps": 20.0,
        "duration_s": 5.0,
        "concurrency": 8,
        "window_instants": 256,
        "windows": 4,
        "requests": 100,
        "completed": 98,
        "throughput_rps": 19.6,
        "status_counts": {"200": 97, "429": 1},
        "errors_5xx": 0,
        "transport_errors": 2,
        "latency_ms": {
            "p50": 3.0,
            "p95": 7.5,
            "p99": 9.1,
            "mean": 3.4,
            "max": 12.0,
        },
    }


class TestValidation:
    def test_accepts_well_formed_report(self):
        validate_loadgen(sample_report())

    def test_rejects_wrong_schema(self):
        report = sample_report()
        report["schema"] = "psmgen-loadgen/v99"
        with pytest.raises(ValueError):
            validate_loadgen(report)

    def test_rejects_missing_field(self):
        report = sample_report()
        del report["throughput_rps"]
        with pytest.raises(ValueError):
            validate_loadgen(report)

    def test_rejects_malformed_latency_block(self):
        report = sample_report()
        report["latency_ms"] = {"p50": 3.0}
        with pytest.raises(ValueError):
            validate_loadgen(report)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_loadgen([])


class TestFormat:
    def test_one_screen_rendering(self):
        text = format_report(sample_report())
        assert "model fig2: 98/100 responses" in text
        assert "p50 3.0" in text
        assert "429: 1" in text
        assert "5xx: 0" in text
