"""Tests for the loadgen client: percentile math and report schema."""

import pytest

from repro.serve.loadgen import (
    ELASTIC_SCHEMA,
    SCHEMA,
    format_report,
    latency_summary,
    percentile,
    validate_elastic,
    validate_loadgen,
)


class TestPercentile:
    def test_single_sample(self):
        assert percentile([4.2], 99) == 4.2

    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        values = [5, 1, 3, 2, 4]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 5

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_unsorted_input_ok(self):
        assert percentile([9, 1, 5], 50) == 5


class TestLatencySummary:
    def test_converts_to_milliseconds(self):
        summary = latency_summary([0.001, 0.002, 0.003])
        assert summary["p50"] == 2.0
        assert summary["mean"] == 2.0
        assert summary["max"] == 3.0

    def test_empty_sample_is_zeros(self):
        summary = latency_summary([])
        assert summary == {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "mean": 0.0,
            "max": 0.0,
        }


def sample_report() -> dict:
    """A minimal well-formed ``psmgen-loadgen/v1`` payload."""
    return {
        "schema": SCHEMA,
        "model": "fig2",
        "target_rps": 20.0,
        "duration_s": 5.0,
        "concurrency": 8,
        "window_instants": 256,
        "windows": 4,
        "requests": 100,
        "completed": 98,
        "throughput_rps": 19.6,
        "status_counts": {"200": 97, "429": 1},
        "errors_5xx": 0,
        "transport_errors": 2,
        "latency_ms": {
            "p50": 3.0,
            "p95": 7.5,
            "p99": 9.1,
            "mean": 3.4,
            "max": 12.0,
        },
    }


class TestValidation:
    def test_accepts_well_formed_report(self):
        validate_loadgen(sample_report())

    def test_rejects_wrong_schema(self):
        report = sample_report()
        report["schema"] = "psmgen-loadgen/v99"
        with pytest.raises(ValueError):
            validate_loadgen(report)

    def test_rejects_missing_field(self):
        report = sample_report()
        del report["throughput_rps"]
        with pytest.raises(ValueError):
            validate_loadgen(report)

    def test_rejects_malformed_latency_block(self):
        report = sample_report()
        report["latency_ms"] = {"p50": 3.0}
        with pytest.raises(ValueError):
            validate_loadgen(report)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_loadgen([])


def sample_elastic() -> dict:
    return {
        "schema": ELASTIC_SCHEMA,
        "model": "fig2",
        "min_workers": 1,
        "max_workers": 3,
        "target_rps": 80.0,
        "duration_s": 6.0,
        "load": {
            "requests": 480,
            "completed": 480,
            "throughput_rps": 78.5,
            "errors_5xx": 0,
            "latency_ms": {"p50": 3.0, "p95": 9.0, "p99": 12.0,
                           "mean": 4.0, "max": 15.0},
        },
        "max_ready": 3,
        "scaled_up": True,
        "scale_up_s": 1.2,
        "drained_down": True,
        "drain_s": 4.0,
        "trajectory": [{"t": 0.0, "ready": 1}, {"t": 2.0, "ready": 3}],
        "events": [{"direction": "up"}],
        "counters": {"autoscale_up": 2.0},
        "negcache_probe": {"requests": 4, "hits": 3},
        "joined_workers": {},
        "host_cpus": 1,
    }


class TestValidateElastic:
    def test_accepts_well_formed_report(self):
        validate_elastic(sample_elastic())

    def test_rejects_wrong_schema(self):
        report = sample_elastic()
        report["schema"] = "psmgen-loadgen-elastic/v99"
        with pytest.raises(ValueError):
            validate_elastic(report)

    def test_rejects_missing_convergence_fields(self):
        for field in ("scaled_up", "drained_down", "trajectory"):
            report = sample_elastic()
            del report[field]
            with pytest.raises(ValueError):
                validate_elastic(report)

    def test_rejects_malformed_load_section(self):
        report = sample_elastic()
        del report["load"]["errors_5xx"]
        with pytest.raises(ValueError):
            validate_elastic(report)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_elastic([])


class TestFormat:
    def test_one_screen_rendering(self):
        text = format_report(sample_report())
        assert "model fig2: 98/100 responses" in text
        assert "p50 3.0" in text
        assert "429: 1" in text
        assert "5xx: 0" in text


class TestSeededSampling:
    """--seed: deterministic window selection; per-worker grouping."""

    WINDOWS = [
        {"columns": {"on": [i % 2] * 8}, "variables": []} for i in range(6)
    ]

    def _run(self, monkeypatch, seed, duration=0.15):
        import asyncio

        from repro.serve import loadgen

        sent = []

        async def fake_request(self, method, path, body, content_type):
            sent.append(body)
            worker = f"w{len(sent) % 3}"
            return 200, {"x-psm-worker": worker}, b"{}"

        monkeypatch.setattr(loadgen._Lane, "request", fake_request)
        report = asyncio.run(
            loadgen._run_loadgen_async(
                "127.0.0.1",
                1,
                "m",
                self.WINDOWS,
                rps=500.0,
                duration_s=duration,
                concurrency=4,
                timeout=1.0,
                seed=seed,
            )
        )
        return sent, report

    def test_same_seed_replays_identical_sequence(self, monkeypatch):
        first, _ = self._run(monkeypatch, seed=42)
        second, _ = self._run(monkeypatch, seed=42)
        shared = min(len(first), len(second))
        assert shared >= 5
        assert first[:shared] == second[:shared]

    def test_different_seeds_diverge(self, monkeypatch):
        first, _ = self._run(monkeypatch, seed=1)
        second, _ = self._run(monkeypatch, seed=2)
        shared = min(len(first), len(second))
        assert first[:shared] != second[:shared]

    def test_no_seed_is_round_robin(self, monkeypatch):
        import json as json_module

        sent, report = self._run(monkeypatch, seed=None)
        windows = [json_module.loads(body)["trace"] for body in sent]
        expected = [
            self.WINDOWS[i % len(self.WINDOWS)] for i in range(len(sent))
        ]
        assert windows == expected
        assert report["seed"] is None

    def test_seed_recorded_in_report(self, monkeypatch):
        _, report = self._run(monkeypatch, seed=7)
        assert report["seed"] == 7
        validate_loadgen(report)

    def test_worker_tags_grouped_into_per_worker_summaries(
        self, monkeypatch
    ):
        _, report = self._run(monkeypatch, seed=3)
        workers = report["workers"]
        assert set(workers) <= {"w0", "w1", "w2"}
        assert sum(w["completed"] for w in workers.values()) == (
            report["completed"]
        )
        for summary in workers.values():
            assert set(summary["latency_ms"]) == {
                "p50",
                "p95",
                "p99",
                "mean",
                "max",
            }
