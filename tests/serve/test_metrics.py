"""Tests for the stdlib Prometheus metrics implementation."""

import math
import threading

import pytest

from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    find_sample,
    parse_prometheus,
    sum_samples,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total", "Requests.")
        assert c.value() == 0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_counters_only_go_up(self):
        c = Counter("requests_total", "Requests.")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_series_are_independent(self):
        c = Counter("requests_total", "Requests.", labelnames=("status",))
        c.inc(status="200")
        c.inc(status="200")
        c.inc(status="500")
        assert c.value(status="200") == 2
        assert c.value(status="500") == 1
        assert c.value(status="404") == 0

    def test_unknown_label_rejected(self):
        c = Counter("requests_total", "Requests.", labelnames=("status",))
        with pytest.raises(ValueError):
            c.inc(region="eu")

    def test_render_includes_help_and_type(self):
        c = Counter("requests_total", "Requests served.")
        c.inc(3)
        lines = c.render()
        assert "# HELP requests_total Requests served." in lines
        assert "# TYPE requests_total counter" in lines
        assert "requests_total 3" in lines


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth", "Queue depth.")
        g.set(5)
        g.dec(2)
        g.inc(1)
        assert g.value() == 4

    def test_gauges_may_go_negative(self):
        g = Gauge("drift", "Signed drift.")
        g.dec(3)
        assert g.value() == -3


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("lat", "Latency.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            h.observe(value)
        assert h.bucket_count(0.1) == 1
        assert h.bucket_count(1.0) == 3
        assert h.bucket_count(10.0) == 4
        assert h.count() == 4

    def test_render_has_inf_sum_count(self):
        h = Histogram("lat", "Latency.", buckets=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        text = "\n".join(h.render())
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 2.5" in text
        assert "lat_count 2" in text

    def test_labelled_histogram(self):
        h = Histogram(
            "batch", "Batch wall.", buckets=(1.0,), labelnames=("model",)
        )
        h.observe(0.2, model="ram")
        h.observe(0.3, model="ram")
        h.observe(0.9, model="aes")
        assert h.count(model="ram") == 2
        assert h.count(model="aes") == 1

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("empty", "No buckets.", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", "Hits.")
        b = reg.counter("hits", "Hits.")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("hits", "Hits.")
        with pytest.raises(ValueError):
            reg.gauge("hits", "Hits.")
        with pytest.raises(ValueError):
            reg.histogram("hits", "Hits.")

    def test_render_round_trips_through_parser(self):
        reg = MetricsRegistry()
        reg.counter("c", "C.", labelnames=("x",)).inc(2, x="a")
        reg.gauge("g", "G.").set(1.5)
        reg.histogram("h", "H.", buckets=(1.0,)).observe(0.5)
        samples = parse_prometheus(reg.render())
        assert find_sample(samples, "c", x="a") == 2
        assert samples["g"][""] == 1.5
        assert find_sample(samples, "h_bucket", le="1") == 1
        assert samples["h_count"][""] == 1

    def test_concurrent_increments_are_not_lost(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits", "Hits.")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 4000


class TestParser:
    def test_parses_inf(self):
        samples = parse_prometheus('x_bucket{le="+Inf"} 7\n')
        assert samples["x_bucket"]['{le="+Inf"}'] == 7

    def test_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            parse_prometheus("garbage-without-value\n")

    def test_skips_comments_and_blanks(self):
        samples = parse_prometheus("# HELP x X.\n\nx 1\n")
        assert samples == {"x": {"": 1.0}}


class TestSumSamples:
    def test_sums_across_label_blocks(self):
        # Aggregated cluster expositions carry one series per worker=
        # label; fleet-wide assertions sum them.
        samples = parse_prometheus(
            'c{worker="w0"} 2\nc{worker="w1"} 3\nc{worker="w2"} 5\n'
        )
        assert sum_samples(samples, "c") == 10.0

    def test_label_filter_restricts_the_sum(self):
        samples = parse_prometheus(
            'c{worker="w0",kind="a"} 2\nc{worker="w1",kind="b"} 3\n'
        )
        assert sum_samples(samples, "c", kind="a") == 2.0

    def test_missing_metric_sums_to_zero(self):
        assert sum_samples({}, "nope") == 0.0
