"""Tests for the elastic serving layer: autoscaler, pre-warm, negcache.

Unit tests drive :meth:`Autoscaler.decide` and :class:`NegativeCache`
with synthetic clocks (the hysteresis/cooldown/TTL behaviour must be
deterministic); integration tests run a full inproc cluster through a
grow/drain cycle, a pre-warm bootstrap and the negative-cache
publish-invalidation path end to end.
"""

import asyncio
import json
import os
import sys

import pytest

from repro.core.export import save_psms
from repro.serve.cluster import (
    Autoscaler,
    ClusterConfig,
    HotTracker,
    NegativeCache,
    ServeCluster,
)
from repro.serve.loadgen import http_request_json
from repro.serve.metrics import MetricsRegistry
from repro.traces.variables import bool_in

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from core.test_export import fig2_psm  # noqa: E402
from serve.test_cluster import (  # noqa: E402
    MODELS,
    VARIABLES,
    estimate,
    make_window,
    run,
)


@pytest.fixture
def models_dir(tmp_path):
    for name in MODELS:
        save_psms([fig2_psm()], tmp_path / f"{name}.json", variables=VARIABLES)
    return tmp_path


def make_cluster(models_dir, workers=1, **config):
    config.setdefault("vnodes", 16)
    return ServeCluster(
        models_dir,
        config=ClusterConfig(workers=workers, **config),
        backend="inproc",
    )


class _FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class _StubSupervisor:
    """Just enough supervisor for Autoscaler unit construction."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.workers = {}
        self._closing = False

    def ready_workers(self):
        return []


def make_autoscaler(**config):
    config.setdefault("workers", 1)
    config.setdefault("min_workers", 1)
    config.setdefault("max_workers", 3)
    config.setdefault("scale_up_ticks", 3)
    config.setdefault("scale_up_depth", 2.0)
    config.setdefault("scale_cooldown", 5.0)
    config.setdefault("idle_drain_s", 10.0)
    return Autoscaler(_StubSupervisor(), None, ClusterConfig(**config))


class TestAutoscalerDecide:
    def test_pressure_must_be_sustained(self):
        scaler = make_autoscaler(scale_up_ticks=3)
        assert scaler.decide(1, 5.0, 0, 0.0, now=0.0) is None
        assert scaler.decide(1, 5.0, 0, 0.0, now=0.5) is None
        assert scaler.decide(1, 5.0, 0, 0.0, now=1.0) == "up"
        assert "queue depth" in scaler.last_reason

    def test_pressure_gap_resets_the_streak(self):
        scaler = make_autoscaler(scale_up_ticks=2)
        assert scaler.decide(1, 5.0, 0, 0.0, now=0.0) is None
        # One calm tick voids the streak: the next burst starts over.
        assert scaler.decide(1, 0.0, 0, 0.0, now=0.5) is None
        assert scaler.decide(1, 5.0, 0, 0.0, now=1.0) is None
        assert scaler.decide(1, 5.0, 0, 0.0, now=1.5) == "up"

    def test_hot_demand_triggers_without_queue_depth(self):
        scaler = make_autoscaler(scale_up_ticks=1, replicas_hot=2)
        # 1 hot model * 2 replicas > 1 ready worker.
        assert scaler.decide(1, 0.0, 1, 0.0, now=0.0) == "up"
        assert "hot model" in scaler.last_reason

    def test_p95_budget_breach_triggers(self):
        scaler = make_autoscaler(scale_up_ticks=1, p95_budget_ms=50.0)
        assert scaler.decide(1, 0.0, 0, 80.0, now=0.0) == "up"
        assert "p95" in scaler.last_reason

    def test_cooldown_blocks_consecutive_events(self):
        scaler = make_autoscaler(scale_up_ticks=1, scale_cooldown=5.0)
        assert scaler.decide(1, 5.0, 0, 0.0, now=0.0) == "up"
        assert scaler.decide(2, 5.0, 0, 0.0, now=1.0) is None
        assert scaler.decide(2, 5.0, 0, 0.0, now=4.9) is None
        assert scaler.decide(2, 5.0, 0, 0.0, now=5.5) == "up"

    def test_ceiling_is_respected(self):
        scaler = make_autoscaler(scale_up_ticks=1, max_workers=2)
        assert scaler.decide(2, 5.0, 0, 0.0, now=0.0) is None

    def test_idle_window_must_fully_elapse(self):
        scaler = make_autoscaler(idle_drain_s=10.0, scale_cooldown=0.0)
        assert scaler.decide(3, 0.0, 0, 0.0, now=0.0) is None
        assert scaler.decide(3, 0.0, 0, 0.0, now=5.0) is None
        assert scaler.decide(3, 0.0, 0, 0.0, now=10.0) == "down"
        assert "idle" in scaler.last_reason

    def test_hot_model_resets_the_idle_window(self):
        scaler = make_autoscaler(idle_drain_s=10.0, scale_cooldown=0.0)
        assert scaler.decide(3, 0.0, 0, 0.0, now=0.0) is None
        assert scaler.decide(3, 0.0, 1, 0.0, now=5.0) is None
        # Window restarted at the hot tick: 10 s from *there*.
        assert scaler.decide(3, 0.0, 0, 0.0, now=10.0) is None
        assert scaler.decide(3, 0.0, 0, 0.0, now=14.0) is None
        assert scaler.decide(3, 0.0, 0, 0.0, now=20.1) == "down"

    def test_floor_is_respected(self):
        scaler = make_autoscaler(
            min_workers=2, idle_drain_s=1.0, scale_cooldown=0.0
        )
        scaler.decide(2, 0.0, 0, 0.0, now=0.0)
        assert scaler.decide(2, 0.0, 0, 0.0, now=2.0) is None

    def test_mid_band_pressure_never_scales(self):
        # Between a quarter of the up threshold and the threshold sits
        # the hysteresis dead band: not pressured, not idle, no event.
        scaler = make_autoscaler(
            scale_up_ticks=1, scale_up_depth=2.0,
            idle_drain_s=1.0, scale_cooldown=0.0,
        )
        for tick in range(40):
            assert scaler.decide(2, 1.0, 0, 0.0, now=tick * 0.5) is None

    def test_fixed_pool_is_disabled(self):
        scaler = make_autoscaler(workers=2, min_workers=0, max_workers=0)
        assert not scaler.enabled


class TestHotTrackerDecay:
    def test_rates_cool_during_silence(self):
        tracker = HotTracker(hot_rps=5.0, hot_depth=100, replicas_hot=2)
        for tick in range(20):
            tracker.note("m", 10.0 + tick * 0.04)  # hot burst in bucket 10
        tracker.note("m", 11.0)
        assert tracker.rate("m") == pytest.approx(10.0)
        tracker.decay(18.0)  # seven silent buckets
        assert tracker.rate("m") < 0.2

    def test_decay_exits_the_hot_set(self):
        tracker = HotTracker(hot_rps=5.0, hot_depth=100, replicas_hot=2)
        for tick in range(20):
            tracker.note("m", 10.0 + tick * 0.04)
        tracker.note("m", 11.0)
        assert tracker.replicas("m") == 2
        tracker.decay(30.0)
        assert tracker.hot_models() == []
        assert tracker.replicas("m") == 1

    def test_hysteresis_survives_a_short_lull(self):
        tracker = HotTracker(hot_rps=8.0, hot_depth=100, replicas_hot=2)
        tracker._rate["m"] = 12.0
        tracker._bucket["m"] = 10
        tracker._count["m"] = 0
        assert tracker.replicas("m") == 2
        tracker.decay(11.0)  # one empty bucket: rate 6.0, above half
        assert tracker.replicas("m") == 2  # still hot (hysteresis)
        tracker.decay(13.0)
        assert tracker.replicas("m") == 1

    def test_replicas_monotone_under_bursty_clock(self):
        # Replica count may only step between 1 and replicas_hot — the
        # bursty on/off load below must never yield anything else, and
        # transitions must follow the enter/exit thresholds in order.
        tracker = HotTracker(hot_rps=4.0, hot_depth=100, replicas_hot=3)
        observed = []
        now = 50.0
        for burst in range(6):
            busy = burst % 2 == 0
            # Busy bursts offer ~12 rps for 3 s; quiet ones 6 s of
            # silence — long enough for the decay to cross the exit
            # threshold.
            for tick in range(12 if busy else 24):
                if busy:
                    for _ in range(3):
                        tracker.note("m", now)
                now += 0.25
            tracker.decay(now)
            observed.append(tracker.replicas("m"))
        assert set(observed) <= {1, 3}
        assert 3 in observed and 1 in observed

    def test_fully_cooled_series_are_pruned(self):
        tracker = HotTracker(hot_rps=5.0, hot_depth=100, replicas_hot=2)
        tracker.note("m", 10.0)
        tracker.note("m", 11.0)
        tracker.decay(100.0)
        assert "m" not in tracker._rate
        assert "m" not in tracker._bucket


class TestNegativeCache:
    def make_cache(self, tmp_path, ttl=5.0, cap=1024):
        clock = _FakeClock()
        cache = NegativeCache(tmp_path, ttl, cap=cap, clock=clock)
        return cache, clock

    def test_store_then_hit(self, tmp_path):
        cache, _clock = self.make_cache(tmp_path)
        assert cache.lookup("ghost") is None
        cache.store("ghost", 404, b'{"error":"x"}', "application/json")
        assert cache.lookup("ghost") == (
            404, b'{"error":"x"}', "application/json"
        )
        assert cache._hits.value() == 1
        assert cache._misses.value() == 1

    def test_ttl_expires_entries(self, tmp_path):
        cache, clock = self.make_cache(tmp_path, ttl=5.0)
        cache.store("ghost", 404, b"{}", "application/json")
        clock.now += 4.9
        assert cache.lookup("ghost") is not None
        clock.now += 0.2
        assert cache.lookup("ghost") is None
        assert len(cache) == 0
        assert cache._evictions.value() == 1

    def test_publish_invalidates_before_ttl(self, tmp_path):
        cache, _clock = self.make_cache(tmp_path, ttl=3600.0)
        cache.store("ghost", 404, b"{}", "application/json")
        # The model gets published: the very next lookup must forward.
        (tmp_path / "ghost.json").write_text("{}")
        assert cache.lookup("ghost") is None
        assert len(cache) == 0
        assert cache._invalidations.value() == 1

    def test_replaced_bundle_invalidates_quarantine_verdict(self, tmp_path):
        bundle = tmp_path / "broken.json"
        bundle.write_text("not json")
        cache, _clock = self.make_cache(tmp_path, ttl=3600.0)
        cache.store("broken", 503, b"quarantined", "text/plain")
        assert cache.lookup("broken") is not None
        os.utime(bundle, ns=(1, 1))  # republished in place
        assert cache.lookup("broken") is None
        assert cache._invalidations.value() == 1

    def test_lru_cap_bounds_hostile_churn(self, tmp_path):
        cache, _clock = self.make_cache(tmp_path, cap=3)
        for index in range(5):
            cache.store(f"m{index}", 404, b"{}", "application/json")
        assert len(cache) == 3
        assert cache.lookup("m0") is None  # oldest two evicted
        assert cache.lookup("m4") is not None
        assert cache._evictions.value() == 2

    def test_zero_ttl_disables_the_cache(self, tmp_path):
        cache, _clock = self.make_cache(tmp_path, ttl=0.0)
        cache.store("ghost", 404, b"{}", "application/json")
        assert len(cache) == 0
        assert cache.lookup("ghost") is None
        assert cache._misses.value() == 0  # disabled, not missing

    def test_unpublishable_names_have_no_signature(self, tmp_path):
        cache, _clock = self.make_cache(tmp_path)
        assert cache._signature("../etc/passwd") is None
        assert cache._signature(".hidden") is None
        assert cache._signature("") is None


async def _estimate_raw(port, model, seed=0):
    """Estimate returning the full header map (negcache tag included)."""
    status, headers, data = await http_request_json(
        "127.0.0.1",
        port,
        "POST",
        "/v1/estimate",
        {"model": model, "trace": make_window(seed)},
    )
    return status, headers, json.loads(data) if data else {}


class TestNegcacheRouting:
    def test_unknown_model_served_from_cache_until_published(
        self, models_dir
    ):
        async def scenario():
            cluster = make_cluster(
                models_dir, workers=2, negcache_ttl=3600.0
            )
            await cluster.start()
            try:
                status, headers, _ = await _estimate_raw(
                    cluster.port, "ghost"
                )
                assert status == 404
                assert "x-psm-negcache" not in headers
                forwards_before = sum(
                    cluster.router._forwards.value(worker=wid)
                    for wid in list(cluster.supervisor.workers)
                )
                status, headers, _ = await _estimate_raw(
                    cluster.port, "ghost"
                )
                assert status == 404
                assert headers.get("x-psm-negcache") == "hit"
                forwards_after = sum(
                    cluster.router._forwards.value(worker=wid)
                    for wid in list(cluster.supervisor.workers)
                )
                assert forwards_after == forwards_before  # no forward
                assert cluster.router.negcache._hits.value() >= 1

                # Publish the model: the cached 404 must not shadow it.
                save_psms(
                    [fig2_psm()],
                    models_dir / "ghost.json",
                    variables=VARIABLES,
                )
                await asyncio.sleep(0.3)  # past worker freshness window
                status, headers, payload = await _estimate_raw(
                    cluster.port, "ghost"
                )
                assert status == 200
                assert "x-psm-negcache" not in headers
                assert "energy" in payload
                assert (
                    cluster.router.negcache._invalidations.value() >= 1
                )
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_bad_traffic_does_not_heat_the_tracker(self, models_dir):
        async def scenario():
            cluster = make_cluster(
                models_dir, workers=1, negcache_ttl=3600.0
            )
            await cluster.start()
            try:
                for seed in range(6):
                    await _estimate_raw(cluster.port, "ghost", seed)
                # Only the first (the miss that got forwarded) reaches
                # the tracker; cache hits never count as demand.
                assert cluster.router.tracker._count.get("ghost", 0) <= 1
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_router_healthz_reports_negcache(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=1)
            await cluster.start()
            try:
                await _estimate_raw(cluster.port, "ghost")
                _status, _headers, body = await http_request_json(
                    "127.0.0.1", cluster.port, "GET", "/healthz"
                )
                doc = json.loads(body)
                assert doc["negcache"]["size"] == 1
                assert doc["negcache"]["ttl_s"] == pytest.approx(2.0)
            finally:
                await cluster.shutdown(5.0)

        run(scenario())


class TestPrewarm:
    def test_initial_fleet_joins_warm(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=3)
            await cluster.start()
            try:
                supervisor = cluster.supervisor
                # Every model is warmed on its primary AND its replica
                # placement (the fan-out path), once per worker.
                expected_total = sum(
                    len(supervisor.owned_models(wid))
                    for wid in supervisor.workers
                )
                assert expected_total >= len(MODELS)
                assert (
                    supervisor._prewarm_models.value() == expected_total
                )
                assert supervisor._prewarm_failures.value() == 0
                # Each worker's registry already holds exactly the
                # bundles on its own primary/replica arcs — warmed,
                # not routed.
                for worker_id, handle in supervisor.workers.items():
                    expected = set(supervisor.owned_models(worker_id))
                    loaded = set(handle.server.registry._entries)
                    assert loaded == expected
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_prewarm_off_joins_cold(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=3, prewarm=False)
            await cluster.start()
            try:
                supervisor = cluster.supervisor
                assert supervisor._prewarm_models.value() == 0
                for handle in supervisor.workers.values():
                    assert len(handle.server.registry._entries) == 0
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_added_worker_prewarms_only_its_arcs(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=1, max_workers=4)
            await cluster.start()
            try:
                supervisor = cluster.supervisor
                before = supervisor._prewarm_models.value()
                worker_id = await supervisor.add_worker()
                handle = supervisor.workers[worker_id]
                assert handle.ready
                owned = supervisor.owned_models(worker_id)
                loaded = set(handle.server.registry._entries)
                assert loaded == set(owned)
                assert (
                    supervisor._prewarm_models.value()
                    == before + len(owned)
                )
                # First routed request for a warmed model is a registry
                # cache hit — the bundle load already happened.
                if owned:
                    misses = handle.server.registry._misses.value()
                    status, worker, _ = await estimate(
                        cluster.port, owned[0]
                    )
                    assert status == 200
                    assert worker == worker_id
                    assert (
                        handle.server.registry._misses.value() == misses
                    )
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_retire_worker_shrinks_ring_and_pool(self, models_dir):
        async def scenario():
            cluster = make_cluster(models_dir, workers=2)
            await cluster.start()
            try:
                supervisor = cluster.supervisor
                retired = await supervisor.retire_worker()
                assert retired == "w1"  # youngest first
                assert retired not in supervisor.ring
                assert retired not in supervisor.workers
                for model in MODELS:
                    status, worker, _ = await estimate(
                        cluster.port, model
                    )
                    assert status == 200
                    assert worker == "w0"
            finally:
                await cluster.shutdown(5.0)

        run(scenario())


class TestAutoscaleIntegration:
    def test_pool_grows_under_hot_demand_then_drains(self, models_dir):
        async def scenario():
            cluster = make_cluster(
                models_dir,
                workers=1,
                min_workers=1,
                max_workers=2,
                scale_interval=0.05,
                scale_up_ticks=1,
                scale_cooldown=0.1,
                idle_drain_s=0.2,
                replicas_hot=2,
            )
            await cluster.start()
            try:
                assert cluster.autoscaler.enabled
                tracker = cluster.router.tracker
                # Inject sustained hot demand: one hot model wanting 2
                # replicas against a 1-worker pool.
                tracker._rate["alpha"] = 100.0
                tracker._bucket["alpha"] = 10 ** 9
                tracker._count["alpha"] = 0
                assert tracker.replicas("alpha") == 2
                deadline = asyncio.get_running_loop().time() + 10.0
                while (
                    len(cluster.supervisor.ready_workers()) < 2
                    and asyncio.get_running_loop().time() < deadline
                ):
                    tracker._rate["alpha"] = 100.0  # outpace decay
                    await asyncio.sleep(0.05)
                assert len(cluster.supervisor.ready_workers()) == 2
                assert cluster.autoscaler._events_total.value(
                    direction="up"
                ) >= 1

                # Stop refreshing demand: decay cools the hot set, the
                # idle window elapses, the pool drains to the floor.
                tracker._rate["alpha"] = 0.0
                deadline = asyncio.get_running_loop().time() + 10.0
                while (
                    len(cluster.supervisor.ready_workers()) > 1
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(0.05)
                assert len(cluster.supervisor.ready_workers()) == 1
                assert cluster.autoscaler._events_total.value(
                    direction="down"
                ) >= 1
                events = cluster.autoscaler.events
                assert [e["direction"] for e in events[:2]] == [
                    "up", "down",
                ]
                for event in events:
                    assert event["reason"]
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_healthz_exposes_autoscaler_state(self, models_dir):
        async def scenario():
            cluster = make_cluster(
                models_dir, workers=1, min_workers=1, max_workers=3
            )
            await cluster.start()
            try:
                _status, _headers, body = await http_request_json(
                    "127.0.0.1", cluster.port, "GET", "/healthz"
                )
                doc = json.loads(body)
                scaler = doc["autoscaler"]
                assert scaler["enabled"] is True
                assert scaler["min_workers"] == 1
                assert scaler["max_workers"] == 3
                assert scaler["ready"] == 1
                assert scaler["events"] == []
            finally:
                await cluster.shutdown(5.0)

        run(scenario())

    def test_workers_clamped_into_bounds(self, models_dir):
        cluster = make_cluster(
            models_dir, workers=5, min_workers=1, max_workers=2
        )
        assert cluster.config.workers == 2
        cluster = make_cluster(
            models_dir, workers=1, min_workers=2, max_workers=4
        )
        assert cluster.config.workers == 2
