"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.mining import AssertionMiner, MinerConfig
from repro.core.pipeline import PsmFlow
from repro.core.psm import reset_state_ids
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS
from repro.traces.functional import FunctionalTrace
from repro.traces.power import PowerTrace
from repro.traces.variables import bool_in, int_in, int_out


@pytest.fixture(autouse=True)
def _fresh_state_ids():
    """Keep state ids deterministic per test."""
    reset_state_ids()
    yield


@pytest.fixture
def fig3_trace() -> FunctionalTrace:
    """The functional trace of the paper's Fig. 3 worked example."""
    specs = [
        bool_in("v1"),
        bool_in("v2"),
        int_in("v3", 4),
        int_out("v4", 4),
    ]
    columns = {
        "v1": [1, 1, 1, 0, 0, 0, 1, 1],
        "v2": [0, 0, 0, 1, 1, 1, 1, 1],
        "v3": [3, 3, 3, 3, 4, 2, 0, 3],
        "v4": [1, 1, 1, 3, 4, 2, 0, 1],
    }
    return FunctionalTrace(specs, columns, name="fig3")


@pytest.fixture
def fig3_power() -> PowerTrace:
    """The dynamic power trace of the paper's Fig. 3 worked example."""
    return PowerTrace(
        [3.349, 3.339, 3.353, 1.902, 1.906, 1.944, 3.350, 3.343],
        name="fig3.power",
    )


@pytest.fixture
def fig3_miner() -> AssertionMiner:
    """Miner configured to reproduce Fig. 3's propositions.

    Constant equalities are disabled so the propositions are built from
    the boolean atoms and the ``v3``/``v4`` comparisons, as in the paper.
    """
    return AssertionMiner(
        MinerConfig(
            min_avg_run=1.0,
            max_chatter_fraction=1.0,
            max_distinct_for_const=0,
        )
    )


@pytest.fixture(scope="session")
def ram_fitted():
    """A fitted RAM flow plus training/evaluation data (session-shared)."""
    spec = BENCHMARKS["RAM"]
    reference = run_power_simulation(spec.module_class(), spec.short_ts())
    flow = PsmFlow(spec.flow_config()).fit(
        [reference.trace], [reference.power]
    )
    return spec, flow, reference


@pytest.fixture(scope="session")
def aes_fitted():
    """A fitted AES flow plus training data (session-shared)."""
    spec = BENCHMARKS["AES"]
    reference = run_power_simulation(spec.module_class(), spec.short_ts())
    flow = PsmFlow(spec.flow_config()).fit(
        [reference.trace], [reference.power]
    )
    return spec, flow, reference
