"""Tests for the psmgen argument parser (fast, no flows)."""

import pytest

from repro.cli import build_parser


class TestParser:
    def test_generate_arguments(self):
        args = build_parser().parse_args(
            [
                "generate",
                "--func",
                "a.csv",
                "--power",
                "p.csv",
                "-o",
                "out.json",
                "--dot",
                "g.dot",
            ]
        )
        assert args.command == "generate"
        assert args.func == ["a.csv"]
        assert args.power == ["p.csv"]
        assert args.output == "out.json"
        assert args.dot == "g.dot"
        assert args.systemc is None

    def test_generate_accepts_multiple_pairs(self):
        args = build_parser().parse_args(
            [
                "generate",
                "--func",
                "a.csv",
                "--func",
                "b.csv",
                "--power",
                "pa.csv",
                "--power",
                "pb.csv",
            ]
        )
        assert len(args.func) == 2
        assert args.output == "psms.json"

    def test_estimate_arguments(self):
        args = build_parser().parse_args(
            ["estimate", "--model", "m.json", "--func", "t.csv"]
        )
        assert args.command == "estimate"
        assert args.func == ["t.csv"]
        assert args.reference is None

    def test_estimate_accepts_multiple_traces(self):
        args = build_parser().parse_args(
            [
                "estimate",
                "--model",
                "m.json",
                "--func",
                "a.csv",
                "--func",
                "b.csv",
                "--reference",
                "ra.csv",
                "--reference",
                "rb.csv",
            ]
        )
        assert args.func == ["a.csv", "b.csv"]
        assert args.reference == ["ra.csv", "rb.csv"]

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--models-dir",
                "bundles/",
                "--port",
                "9000",
                "--jobs",
                "4",
                "--max-queue",
                "16",
            ]
        )
        assert args.command == "serve"
        assert args.models_dir == "bundles/"
        assert args.port == 9000
        assert args.jobs == 4
        assert args.max_queue == 16
        assert args.max_batch == 8
        assert args.cap == 8
        assert args.host == "127.0.0.1"
        assert args.timeout == 30.0

    def test_serve_requires_models_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_elastic_arguments(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--models-dir",
                "bundles/",
                "--min-workers",
                "1",
                "--max-workers",
                "4",
                "--scale-interval",
                "0.2",
                "--scale-up-depth",
                "1.5",
                "--scale-up-ticks",
                "2",
                "--p95-budget-ms",
                "50",
                "--idle-drain",
                "3",
                "--scale-cooldown",
                "1",
                "--no-prewarm",
                "--negcache-ttl",
                "0.5",
            ]
        )
        assert args.min_workers == 1
        assert args.max_workers == 4
        assert args.scale_interval == 0.2
        assert args.scale_up_depth == 1.5
        assert args.scale_up_ticks == 2
        assert args.p95_budget_ms == 50.0
        assert args.idle_drain == 3.0
        assert args.scale_cooldown == 1.0
        assert args.no_prewarm is True
        assert args.negcache_ttl == 0.5

    def test_serve_elastic_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--models-dir", "bundles/"]
        )
        assert args.min_workers == 0
        assert args.max_workers == 0
        assert args.no_prewarm is False
        assert args.negcache_ttl == 2.0

    def test_loadgen_elastic_argument(self):
        args = build_parser().parse_args(
            [
                "loadgen",
                "--model",
                "m",
                "--ip",
                "RAM",
                "--elastic",
                "1,3",
                "--models-dir",
                "bundles/",
            ]
        )
        assert args.elastic == "1,3"
        assert args.models_dir == "bundles/"

    def test_loadgen_arguments(self):
        args = build_parser().parse_args(
            [
                "loadgen",
                "--port",
                "9000",
                "--model",
                "MultSum",
                "--ip",
                "MultSum",
                "--rps",
                "50",
                "--duration",
                "3",
                "--json",
                "report.json",
            ]
        )
        assert args.command == "loadgen"
        assert args.port == 9000
        assert args.model == "MultSum"
        assert args.ip == "MultSum"
        assert args.rps == 50.0
        assert args.duration == 3.0
        assert args.window == 256
        assert args.concurrency == 8
        assert args.json == "report.json"

    def test_loadgen_requires_model(self):
        # --port became optional (the --scale-workers sweep starts its
        # own servers); --model is still mandatory.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--port", "1"])
        args = build_parser().parse_args(["loadgen", "--model", "m"])
        assert args.port is None

    def test_serve_cluster_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--models-dir",
                "bundles/",
                "--workers",
                "4",
                "--replicas-hot",
                "3",
                "--hot-rps",
                "80",
                "--drain-timeout",
                "5",
            ]
        )
        assert args.workers == 4
        assert args.replicas_hot == 3
        assert args.hot_rps == 80.0
        assert args.drain_timeout == 5.0

    def test_serve_cluster_defaults_to_single_process(self):
        args = build_parser().parse_args(
            ["serve", "--models-dir", "bundles/"]
        )
        assert args.workers == 1
        assert args.replicas_hot == 2
        assert args.hot_rps == 50.0
        assert args.drain_timeout == 10.0

    def test_loadgen_cluster_flags(self):
        args = build_parser().parse_args(
            [
                "loadgen",
                "--model",
                "MultSum",
                "--ip",
                "MultSum",
                "--seed",
                "7",
                "--scale-workers",
                "1,2,4",
                "--models-dir",
                "bundles/",
            ]
        )
        assert args.seed == 7
        assert args.scale_workers == "1,2,4"
        assert args.models_dir == "bundles/"

    def test_loadgen_seed_defaults_off(self):
        args = build_parser().parse_args(
            ["loadgen", "--port", "1", "--model", "m"]
        )
        assert args.seed is None
        assert args.scale_workers is None

    def test_bench_arguments(self):
        args = build_parser().parse_args(
            ["bench", "--ip", "AES", "--cycles", "500"]
        )
        assert args.ip == "AES"
        assert args.cycles == 500
        assert not args.micro
        assert args.jobs == 1
        assert args.repeats == 3
        assert args.threshold == 2.0

    def test_bench_micro_arguments(self):
        args = build_parser().parse_args(
            [
                "bench",
                "--micro",
                "--json",
                "BENCH_micro.json",
                "--repeats",
                "1",
                "--compare",
                "baseline.json",
                "--threshold",
                "3.5",
            ]
        )
        assert args.micro
        assert args.ip is None
        assert args.json == "BENCH_micro.json"
        assert args.repeats == 1
        assert args.compare == "baseline.json"
        assert args.threshold == 3.5

    def test_generate_jobs_flag(self):
        args = build_parser().parse_args(
            ["generate", "--func", "a.csv", "--power", "p.csv", "--jobs", "0"]
        )
        assert args.jobs == 0

    def test_tables_arguments(self):
        args = build_parser().parse_args(["tables", "--short-only"])
        assert args.short_only
        assert args.jobs == 1

    def test_tables_jobs_flag(self):
        args = build_parser().parse_args(["tables", "--jobs", "4"])
        assert args.jobs == 4

    def test_convert_arguments(self):
        args = build_parser().parse_args(
            ["convert", "--from-csv", "train", "--to-binary", "train.npt"]
        )
        assert args.command == "convert"
        assert args.from_csv == "train"
        assert args.to_binary == "train.npt"
        assert args.from_binary is None
        assert args.to_csv is None

    def test_convert_from_binary_arguments(self):
        args = build_parser().parse_args(
            ["convert", "--from-binary", "t.npt", "--to-csv", "out"]
        )
        assert args.from_binary == "t.npt"
        assert args.to_csv == "out"

    def test_mine_stream_arguments(self):
        args = build_parser().parse_args(
            [
                "mine",
                "--pair",
                "a.npt",
                "--pair",
                "b.npt",
                "--stream",
                "--window",
                "512",
                "--progress",
                "--publish",
                "live.json",
                "--drift-new-fraction",
                "0.2",
                "--drift-sigmas",
                "4.0",
                "--drift-warmup",
                "3",
                "-o",
                "out.json",
            ]
        )
        assert args.command == "mine"
        assert args.pair == ["a.npt", "b.npt"]
        assert args.stream is True
        assert args.window == 512
        assert args.progress is True
        assert args.publish == "live.json"
        assert args.drift_new_fraction == 0.2
        assert args.drift_sigmas == 4.0
        assert args.drift_warmup == 3
        assert args.output == "out.json"

    def test_mine_defaults_to_batch(self):
        args = build_parser().parse_args(
            ["mine", "--func", "t.csv", "--power", "p.csv"]
        )
        assert args.command == "mine"
        assert args.stream is False
        assert args.window == 4096
        assert args.publish is None
        assert args.drift_new_fraction == 0.0
        assert args.drift_sigmas == 0.0
        assert args.output == "psms.json"

    def test_bench_accuracy_arguments(self):
        args = build_parser().parse_args(
            [
                "bench",
                "--accuracy",
                "--ip",
                "MultSum",
                "--seed",
                "7",
                "--iterations",
                "2",
                "--json",
                "BENCH_accuracy.json",
                "--compare",
                "baseline.json",
                "--threshold",
                "1.5",
            ]
        )
        assert args.accuracy
        assert args.ip == "MultSum"
        assert args.seed == 7
        assert args.iterations == 2
        assert args.json == "BENCH_accuracy.json"
        assert args.compare == "baseline.json"
        assert args.threshold == 1.5

    def test_bench_accuracy_defaults_off(self):
        args = build_parser().parse_args(["bench", "--ip", "RAM"])
        assert not args.accuracy
        assert args.seed is None
        assert args.iterations is None

    def test_refine_arguments(self):
        args = build_parser().parse_args(
            [
                "refine",
                "--ip",
                "Camellia",
                "--seed",
                "7",
                "--iterations",
                "5",
                "--cycles",
                "1000",
                "--window",
                "128",
                "--worst",
                "6",
                "--epsilon",
                "0.01",
                "--max-counterexamples",
                "8",
                "--stream-window",
                "2048",
                "-o",
                "camellia.json",
                "--publish",
                "live/",
                "--json",
                "traj.json",
                "--jobs",
                "2",
            ]
        )
        assert args.command == "refine"
        assert args.ip == "Camellia"
        assert args.seed == 7
        assert args.iterations == 5
        assert args.cycles == 1000
        assert args.window == 128
        assert args.worst == 6
        assert args.epsilon == 0.01
        assert args.max_counterexamples == 8
        assert args.stream_window == 2048
        assert args.output == "camellia.json"
        assert args.publish == "live/"
        assert args.json == "traj.json"
        assert args.jobs == 2

    def test_refine_defaults(self):
        args = build_parser().parse_args(["refine", "--ip", "MultSum"])
        assert args.seed == 0
        assert args.iterations == 3
        assert args.cycles is None
        assert args.window == 256
        assert args.worst == 4
        assert args.epsilon == 0.05
        assert args.max_counterexamples == 12
        assert args.stream_window == 4096
        assert args.output == "refined.json"
        assert args.publish is None
        assert args.json is None

    def test_refine_requires_ip(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["refine"])

    def test_mine_from_ip_with_seed(self):
        args = build_parser().parse_args(
            ["mine", "--ip", "AES", "--seed", "11"]
        )
        assert args.ip == "AES"
        assert args.seed == 11
        assert not args.pair

    def test_mine_seed_defaults_off(self):
        args = build_parser().parse_args(
            ["mine", "--func", "t.csv", "--power", "p.csv"]
        )
        assert args.ip is None
        assert args.seed is None

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_missing_required_option_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--func", "t.csv"])
