"""Tests for the psmgen argument parser (fast, no flows)."""

import pytest

from repro.cli import build_parser


class TestParser:
    def test_generate_arguments(self):
        args = build_parser().parse_args(
            [
                "generate",
                "--func",
                "a.csv",
                "--power",
                "p.csv",
                "-o",
                "out.json",
                "--dot",
                "g.dot",
            ]
        )
        assert args.command == "generate"
        assert args.func == ["a.csv"]
        assert args.power == ["p.csv"]
        assert args.output == "out.json"
        assert args.dot == "g.dot"
        assert args.systemc is None

    def test_generate_accepts_multiple_pairs(self):
        args = build_parser().parse_args(
            [
                "generate",
                "--func",
                "a.csv",
                "--func",
                "b.csv",
                "--power",
                "pa.csv",
                "--power",
                "pb.csv",
            ]
        )
        assert len(args.func) == 2
        assert args.output == "psms.json"

    def test_estimate_arguments(self):
        args = build_parser().parse_args(
            ["estimate", "--model", "m.json", "--func", "t.csv"]
        )
        assert args.command == "estimate"
        assert args.reference is None

    def test_bench_arguments(self):
        args = build_parser().parse_args(
            ["bench", "--ip", "AES", "--cycles", "500"]
        )
        assert args.ip == "AES"
        assert args.cycles == 500
        assert not args.micro
        assert args.jobs == 1
        assert args.repeats == 3
        assert args.threshold == 2.0

    def test_bench_micro_arguments(self):
        args = build_parser().parse_args(
            [
                "bench",
                "--micro",
                "--json",
                "BENCH_micro.json",
                "--repeats",
                "1",
                "--compare",
                "baseline.json",
                "--threshold",
                "3.5",
            ]
        )
        assert args.micro
        assert args.ip is None
        assert args.json == "BENCH_micro.json"
        assert args.repeats == 1
        assert args.compare == "baseline.json"
        assert args.threshold == 3.5

    def test_generate_jobs_flag(self):
        args = build_parser().parse_args(
            ["generate", "--func", "a.csv", "--power", "p.csv", "--jobs", "0"]
        )
        assert args.jobs == 0

    def test_tables_arguments(self):
        args = build_parser().parse_args(["tables", "--short-only"])
        assert args.short_only
        assert args.jobs == 1

    def test_tables_jobs_flag(self):
        args = build_parser().parse_args(["tables", "--jobs", "4"])
        assert args.jobs == 4

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_missing_required_option_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--func", "t.csv"])
