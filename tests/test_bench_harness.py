"""Tests for the Tables I-III regeneration harness."""

import pytest

from repro.bench import (
    fit_benchmark,
    format_table,
    long_cycles,
    scale_factor,
    table1_rows,
)


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5
        assert long_cycles() == 30000

    def test_bad_scale_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        assert scale_factor() == 1.0

    def test_minimum_cycles(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert long_cycles() == 1000


class TestFormatTable:
    def test_renders_columns(self):
        text = format_table(
            [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}], "T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], "T")


class TestTable1:
    def test_rows_cover_all_ips(self):
        rows = table1_rows()
        assert [r["ip"] for r in rows] == [
            "RAM",
            "MultSum",
            "AES",
            "Camellia",
        ]
        for row in rows:
            assert row["memory_elements"] > 0
            assert row["syn_time"] > 0

    def test_synthesis_time_ordering_matches_paper(self):
        """Paper Table I: MultSum < RAM < AES < Camellia."""
        times = {r["ip"]: r["syn_time"] for r in table1_rows()}
        assert (
            times["MultSum"]
            < times["RAM"]
            < times["AES"]
            < times["Camellia"]
        )


class TestFitBenchmark:
    def test_fit_returns_complete_record(self):
        fitted = fit_benchmark("MultSum")
        assert fitted.ts == len(fitted.short_ref.trace)
        assert fitted.px_time > 0
        assert fitted.train_mre >= 0
        assert fitted.flow.fitted

    def test_custom_stimulus(self):
        from repro.testbench import BENCHMARKS

        stimulus = BENCHMARKS["MultSum"].long_ts(1200)
        fitted = fit_benchmark("MultSum", stimulus)
        assert fitted.ts == 1200


class TestTable2ShortOnly:
    def test_short_rows_structure(self):
        from repro.bench import table2_rows

        rows = table2_rows(include_long=False)
        assert [r["ip"] for r in rows] == [
            "RAM",
            "MultSum",
            "AES",
            "Camellia",
        ]
        for row in rows:
            assert row["testset"] == "short-TS"
            assert row["states"] > 0
            assert row["gen_time"] >= 0
            assert row["mre"] >= 0

    def test_camellia_is_the_accuracy_outlier(self):
        from repro.bench import table2_rows

        rows = {r["ip"]: r for r in table2_rows(include_long=False)}
        assert rows["Camellia"]["mre"] > 3 * rows["AES"]["mre"]
