"""Tests for the power estimator (PrimeTime PX substitute)."""

import numpy as np
import pytest

from repro.hdl.simulator import ActivityRecord
from repro.power.estimator import (
    PowerEstimator,
    component_breakdown,
    run_power_simulation,
)
from repro.power.tech import TechLibrary
from repro.ips.ram import Ram
from repro.testbench import ram_short_ts


def _record():
    record = ActivityRecord(["a", "b"])
    record.append({"a": 10.0, "b": 2.0})
    record.append({"a": 0.0, "b": 4.0})
    return record


class TestEstimate:
    def test_unit_capacitance_math(self):
        tech = TechLibrary(vdd=1.0, frequency=1e8, cap_per_toggle=10e-15)
        estimator = PowerEstimator(tech, noise_sigma=0.0)
        power = estimator.estimate(_record())
        per_toggle_mw = tech.energy_per_toggle * 1e3
        assert power[0] == pytest.approx(12 * per_toggle_mw)
        assert power[1] == pytest.approx(4 * per_toggle_mw)

    def test_component_caps_weighting(self):
        estimator = PowerEstimator(noise_sigma=0.0)
        weighted = estimator.estimate(_record(), {"a": 2.0, "b": 0.5})
        unweighted = estimator.estimate(_record())
        assert weighted[0] == pytest.approx(
            unweighted[0] * (2.0 * 10 + 0.5 * 2) / 12
        )

    def test_noise_deterministic_per_seed(self):
        estimator = PowerEstimator(noise_sigma=0.01, seed=7)
        a = estimator.estimate(_record())
        b = estimator.estimate(_record())
        assert np.allclose(a.values, b.values)

    def test_noise_relative_scale(self):
        quiet = PowerEstimator(noise_sigma=0.0).estimate(_record())
        noisy = PowerEstimator(noise_sigma=0.01, seed=1).estimate(_record())
        rel = np.abs(noisy.values - quiet.values) / quiet.values
        assert np.all(rel < 0.1)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            PowerEstimator(noise_sigma=-0.1)


class TestRunPowerSimulation:
    def test_produces_matching_lengths(self):
        stimulus = ram_short_ts()[:200]
        result = run_power_simulation(Ram(), stimulus)
        assert len(result.trace) == len(result.power) == 200
        assert result.total_time >= result.functional_time

    def test_power_is_positive_when_active(self):
        stimulus = ram_short_ts()[:200]
        result = run_power_simulation(Ram(), stimulus)
        assert result.power.mean() > 0

    def test_deterministic_for_same_stimulus(self):
        stimulus = ram_short_ts()[:100]
        a = run_power_simulation(Ram(), stimulus)
        b = run_power_simulation(Ram(), stimulus)
        assert np.allclose(a.power.values, b.power.values)


class TestComponentBreakdown:
    def test_breakdown_per_component(self):
        module = Ram()
        stimulus = ram_short_ts()[:200]
        from repro.hdl.simulator import Simulator

        result = Simulator(module).run(stimulus)
        breakdown = component_breakdown(module, result.activity)
        assert set(breakdown) >= {"array", "io", "clock_tree"}
        assert all(v >= 0 for v in breakdown.values())
