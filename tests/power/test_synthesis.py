"""Tests for the synthesis-report substitute."""

from repro.ips import Aes, Camellia, MultSum, Ram
from repro.power.synthesis import (
    count_source_lines,
    estimate_gates,
    synthesis_time_model,
    synthesize,
)


class TestSynthesize:
    def test_ram_interface_matches_paper(self):
        report = synthesize(Ram())
        assert report.pi_bits == 44
        assert report.po_bits == 32
        assert report.memory_elements >= 8192  # 1KB array

    def test_multsum_interface_matches_paper(self):
        report = synthesize(MultSum())
        assert report.pi_bits == 49
        assert report.po_bits == 32

    def test_aes_interface_matches_paper(self):
        report = synthesize(Aes())
        assert report.pi_bits == 260
        assert report.po_bits == 129

    def test_camellia_interface_matches_paper(self):
        report = synthesize(Camellia())
        assert report.pi_bits == 262
        assert report.po_bits == 129

    def test_row_shape(self):
        row = synthesize(Ram()).row()
        assert len(row) == 6
        assert row[0] == "RAM"

    def test_source_lines_positive(self):
        assert count_source_lines(Ram) > 40
        assert count_source_lines(Aes) > 40

    def test_ram_has_most_memory_elements(self):
        reports = {
            cls.NAME: synthesize(cls()) for cls in (Ram, MultSum, Aes, Camellia)
        }
        ram_mem = reports["RAM"].memory_elements
        assert all(
            ram_mem > r.memory_elements
            for name, r in reports.items()
            if name != "RAM"
        )


class TestModels:
    def test_gate_estimate_grows_with_state(self):
        assert estimate_gates(Aes()) > estimate_gates(MultSum())

    def test_synthesis_time_monotone_in_gates(self):
        assert synthesis_time_model(10000, 0) > synthesis_time_model(1000, 0)

    def test_synthesis_time_zero_design(self):
        assert synthesis_time_model(0, 0) == 0.0

    def test_synthesis_time_deterministic(self):
        assert synthesis_time_model(5000, 100) == synthesis_time_model(
            5000, 100
        )
