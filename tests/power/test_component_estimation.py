"""Tests for per-component power estimation (hierarchical substrate)."""

import numpy as np
import pytest

from repro.hdl.simulator import Simulator
from repro.ips import Camellia, Ram
from repro.power.estimator import PowerEstimator
from repro.testbench import camellia_short_ts, ram_short_ts


@pytest.fixture(scope="module")
def camellia_activity():
    module = Camellia()
    result = Simulator(module).run(camellia_short_ts()[:400])
    return module, result.activity


class TestEstimateComponents:
    def test_one_trace_per_component(self, camellia_activity):
        module, activity = camellia_activity
        traces = PowerEstimator().estimate_components(module, activity)
        assert set(traces) == set(activity.components)
        for trace in traces.values():
            assert len(trace) == len(activity)

    def test_components_sum_to_total_without_noise(self, camellia_activity):
        module, activity = camellia_activity
        estimator = PowerEstimator(noise_sigma=0.0)
        total = estimator.estimate_module(module, activity)
        components = estimator.estimate_components(module, activity)
        summed = np.sum([t.values for t in components.values()], axis=0)
        assert np.allclose(summed, total.values)

    def test_component_caps_applied(self, camellia_activity):
        module, activity = camellia_activity
        estimator = PowerEstimator(noise_sigma=0.0)
        components = estimator.estimate_components(module, activity)
        # fl_layer carries a 3.0x capacitance weight in the module
        raw = activity.column("fl_layer")
        scale = (
            estimator.tech.energy_per_toggle * estimator.tech.unit_scale
        )
        expected = raw * module.COMPONENT_CAPS["fl_layer"] * scale
        assert np.allclose(components["fl_layer"].values, expected)

    def test_noise_streams_are_deterministic(self, camellia_activity):
        module, activity = camellia_activity
        a = PowerEstimator(noise_sigma=0.01, seed=5).estimate_components(
            module, activity
        )
        b = PowerEstimator(noise_sigma=0.01, seed=5).estimate_components(
            module, activity
        )
        for name in a:
            assert np.allclose(a[name].values, b[name].values)

    def test_noise_streams_differ_across_components(self, camellia_activity):
        module, activity = camellia_activity
        traces = PowerEstimator(
            noise_sigma=0.05, seed=5
        ).estimate_components(module, activity)
        left = traces["feistel_left"].values
        right = traces["feistel_right"].values
        active = (left > 0) & (right > 0)
        # same register widths, different noise: the ratio must wobble
        ratios = left[active] / right[active]
        assert np.std(ratios) > 0
