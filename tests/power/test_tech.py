"""Tests for the technology library."""

import pytest

from repro.power.tech import DEFAULT_TECH, TechLibrary


class TestTechLibrary:
    def test_energy_per_toggle_formula(self):
        tech = TechLibrary(vdd=2.0, frequency=1e6, cap_per_toggle=1e-12)
        # 1/2 * 4 * 1e6 * 1e-12 = 2e-6 W
        assert tech.energy_per_toggle == pytest.approx(2e-6)

    def test_default_is_mw_scale(self):
        assert DEFAULT_TECH.unit == "mW"
        assert DEFAULT_TECH.unit_scale == 1e3

    def test_unit_scales(self):
        for unit, scale in [("W", 1.0), ("mW", 1e3), ("uW", 1e6), ("nW", 1e9)]:
            assert TechLibrary(unit=unit).unit_scale == scale

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            TechLibrary(unit="kW").unit_scale

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vdd": 0.0},
            {"vdd": -1.0},
            {"frequency": 0.0},
            {"cap_per_toggle": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TechLibrary(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_TECH.vdd = 2.0
