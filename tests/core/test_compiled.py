"""Bit-exactness tests of the compiled (dense-table) estimation engine.

The compiled engine (:mod:`repro.core.compiled`) lowers a fitted model
into integer transition tables and replays traces through a table walk;
the object-graph simulators remain the semantic oracle.  Every test here
checks **bit-for-bit** agreement — estimated power values, reliability
mask, all prediction/desync counters and the per-instant state sequence
— across all four benchmark IPs and deliberately nasty inputs:
randomized long stimuli, single-instant windows, traces with random
(unknown-proposition) tails and desync-inducing behaviour the training
suite never covered.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.bench import fit_benchmark
from repro.core.compiled import CompiledBundle
from repro.core.simulation import SinglePsmSimulator
from repro.hdl.simulator import Simulator
from repro.testbench import BENCHMARKS
from repro.traces.functional import FunctionalTrace

ALL_IPS = ("RAM", "MultSum", "AES", "Camellia")

#: Instants per randomized evaluation trace (kept modest: four IPs x
#: several seeds, each replayed through both engines).
CYCLES = 400


@pytest.fixture(scope="module", params=ALL_IPS)
def fitted_ip(request):
    """One fitted benchmark flow per IP (module-shared)."""
    return request.param, fit_benchmark(request.param)


def random_trace(name: str, cycles: int, seed: int) -> FunctionalTrace:
    """A fresh randomized long-suite trace for ``name``."""
    spec = BENCHMARKS[name]
    stimulus = spec.long_ts(cycles, seed=seed)
    return (
        Simulator(spec.module_class(), record_activity=False)
        .run(stimulus, name=f"{name}.rand{seed}")
        .trace
    )


def with_random_tail(trace: FunctionalTrace, tail: int, seed: int):
    """``trace`` extended by ``tail`` uniformly random input vectors.

    Random vectors rarely satisfy any mined proposition, so the suffix
    exercises the unknown/nil code path (and, on IPs with incomplete
    training coverage, desynchronisation) right at the end of the trace.
    """
    rng = random.Random(seed)
    columns = {}
    for var in trace.variables:
        values = list(trace.column(var.name))
        values += [rng.randrange(1 << var.width) for _ in range(tail)]
        columns[var.name] = values
    return FunctionalTrace(
        trace.variables, columns, name=f"{trace.name}.tail"
    )


def assert_bit_identical(compiled, oracle):
    """Every observable field of the two estimation results agrees."""
    assert np.array_equal(
        compiled.estimated.values, oracle.estimated.values
    )
    assert np.array_equal(compiled.reliable, oracle.reliable)
    assert compiled.predictions == oracle.predictions
    assert compiled.wrong_predictions == oracle.wrong_predictions
    assert compiled.desync_instants == oracle.desync_instants
    assert compiled.unknown_instants == oracle.unknown_instants
    assert compiled.reverted_instants == oracle.reverted_instants
    # both comparison directions: LazyStateSequence.__eq__ and the
    # list's reflected comparison must agree.
    assert compiled.state_sequence == oracle.state_sequence
    assert oracle.state_sequence == compiled.state_sequence


class TestMultiPsmBitIdentity:
    def test_randomized_traces(self, fitted_ip):
        name, fitted = fitted_ip
        simulator = fitted.flow.simulator()
        for seed in (11, 29):
            trace = random_trace(name, CYCLES, seed)
            oracle = simulator.run(trace, engine="object")
            compiled = simulator.run(trace, engine="compiled")
            assert_bit_identical(compiled, oracle)

    def test_training_trace(self, fitted_ip):
        _name, fitted = fitted_ip
        simulator = fitted.flow.simulator()
        trace = fitted.short_ref.trace
        assert_bit_identical(
            simulator.run(trace, engine="compiled"),
            simulator.run(trace, engine="object"),
        )

    def test_single_instant_windows(self, fitted_ip):
        _name, fitted = fitted_ip
        simulator = fitted.flow.simulator()
        trace = fitted.short_ref.trace
        for start in (0, len(trace) // 2, len(trace) - 1):
            window = trace.slice(start, start)
            assert len(window) == 1
            assert_bit_identical(
                simulator.run(window, engine="compiled"),
                simulator.run(window, engine="object"),
            )

    def test_random_tail_unknown_instants(self, fitted_ip):
        name, fitted = fitted_ip
        simulator = fitted.flow.simulator()
        trace = with_random_tail(random_trace(name, CYCLES, 5), 48, seed=7)
        oracle = simulator.run(trace, engine="object")
        compiled = simulator.run(trace, engine="compiled")
        assert_bit_identical(compiled, oracle)

    def test_repeat_run_hits_walk_cache(self, fitted_ip):
        name, fitted = fitted_ip
        simulator = fitted.flow.simulator()
        trace = random_trace(name, CYCLES, 3)
        first = simulator.run(trace, engine="compiled")
        second = simulator.run(trace, engine="compiled")
        assert_bit_identical(second, first)
        assert_bit_identical(second, simulator.run(trace, engine="object"))


class TestDesyncCoverage:
    def test_camellia_randomized_trace_desyncs(self):
        """The hard path — desync, resync, reverts — is really exercised.

        Camellia's verification plan does not cover clock gating, so a
        randomized gating-heavy long suite forces the simulator off the
        mined PSMs (the paper's WSP scenario); the compiled engine must
        track the oracle through every desync and revert.
        """
        fitted = fit_benchmark("Camellia")
        simulator = fitted.flow.simulator()
        trace = random_trace("Camellia", 1200, 17)
        oracle = simulator.run(trace, engine="object")
        assert oracle.desync_instants > 0
        assert_bit_identical(
            simulator.run(trace, engine="compiled"), oracle
        )


class TestSinglePsmBitIdentity:
    def test_randomized_traces(self, fitted_ip):
        name, fitted = fitted_ip
        labeler = fitted.flow.mining.labeler
        single = SinglePsmSimulator(fitted.flow.raw_psms[0], labeler)
        for seed in (13, 31):
            trace = random_trace(name, CYCLES, seed)
            assert_bit_identical(
                single.run(trace, engine="compiled"),
                single.run(trace, engine="object"),
            )

    def test_single_instant_and_random_tail(self, fitted_ip):
        name, fitted = fitted_ip
        labeler = fitted.flow.mining.labeler
        single = SinglePsmSimulator(fitted.flow.raw_psms[0], labeler)
        base = fitted.short_ref.trace
        for window in (
            base.slice(0, 0),
            with_random_tail(random_trace(name, 200, 23), 32, seed=9),
        ):
            assert_bit_identical(
                single.run(window, engine="compiled"),
                single.run(window, engine="object"),
            )


class TestEngineSelection:
    def test_unknown_engine_rejected(self, fitted_ip):
        _name, fitted = fitted_ip
        simulator = fitted.flow.simulator()
        trace = fitted.short_ref.trace
        with pytest.raises(ValueError, match="unknown engine"):
            simulator.run(trace, engine="turbo")
        labeler = fitted.flow.mining.labeler
        single = SinglePsmSimulator(fitted.flow.raw_psms[0], labeler)
        with pytest.raises(ValueError, match="unknown engine"):
            single.run(trace, engine="turbo")

    def test_auto_matches_explicit_engines(self, fitted_ip):
        _name, fitted = fitted_ip
        simulator = fitted.flow.simulator()
        trace = fitted.short_ref.trace
        assert_bit_identical(
            simulator.run(trace, engine="auto"),
            simulator.run(trace, engine="object"),
        )


class TestCompiledBundle:
    def test_from_simulator_estimates_bit_identical(self, fitted_ip):
        name, fitted = fitted_ip
        simulator = fitted.flow.simulator()
        bundle = CompiledBundle.from_simulator(simulator)
        trace = random_trace(name, CYCLES, 41)
        assert_bit_identical(
            bundle.estimate(trace), simulator.run(trace, engine="object")
        )

    def test_run_batch_matches_per_trace_runs(self, fitted_ip):
        name, fitted = fitted_ip
        simulator = fitted.flow.simulator()
        bundle = CompiledBundle.from_simulator(simulator)
        traces = [random_trace(name, 150, seed) for seed in (1, 2)]
        batch = bundle.run_batch(traces)
        for trace, result in zip(traces, batch):
            assert_bit_identical(
                result, simulator.run(trace, engine="object")
            )

    def test_stats_report_lowered_tables(self, fitted_ip):
        _name, fitted = fitted_ip
        bundle = CompiledBundle.from_simulator(fitted.flow.simulator())
        stats = bundle.stats()
        assert stats["states"] > 0
        assert stats["symbols"] > 0
        assert stats["compile_wall_s"] >= 0.0
        assert bundle.mu.shape == bundle.sigma.shape
        assert bundle.A.shape[0] == bundle.A.shape[1] == len(bundle.mu)
