"""Tests for the PSMGenerator procedure (paper Fig. 4)."""

import numpy as np
import pytest

from repro.core.generator import generate_psm, generate_psms
from repro.core.mining import AssertionMiner
from repro.core.propositions import (
    Proposition,
    PropositionTrace,
    VarEqualsConst,
)
from repro.core.psm import reset_state_ids
from repro.core.temporal import NextAssertion, UntilAssertion
from repro.traces.power import PowerTrace


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


@pytest.fixture
def example():
    p = props(4)
    gamma = PropositionTrace(
        [p[0], p[0], p[0], p[1], p[1], p[1], p[2], p[3]]
    )
    delta = PowerTrace(
        [3.349, 3.339, 3.353, 1.902, 1.906, 1.944, 3.350, 3.343]
    )
    return p, gamma, delta


class TestFig5Example:
    def test_three_states_chain(self, example):
        p, gamma, delta = example
        psm = generate_psm(gamma, delta)
        assert len(psm) == 3
        assert len(psm.transitions) == 2
        assert psm.is_chain()

    def test_state_assertions(self, example):
        p, gamma, delta = example
        states = generate_psm(gamma, delta).states
        assert states[0].assertion == UntilAssertion(p[0], p[1])
        assert states[1].assertion == UntilAssertion(p[1], p[2])
        assert states[2].assertion == NextAssertion(p[2], p[3])

    def test_power_attributes(self, example):
        p, gamma, delta = example
        states = generate_psm(gamma, delta).states
        assert states[0].mu == pytest.approx(
            (3.349 + 3.339 + 3.353) / 3
        )
        assert states[0].n == 3
        assert states[1].mu == pytest.approx((1.902 + 1.906 + 1.944) / 3)
        assert states[2].mu == pytest.approx(3.350)
        assert states[2].n == 1

    def test_enabling_functions_are_exit_propositions(self, example):
        """The transition guard is the FIFO's f[1] at recognition time."""
        p, gamma, delta = example
        psm = generate_psm(gamma, delta)
        transitions = psm.transitions
        assert transitions[0].enabling is p[1]
        assert transitions[1].enabling is p[2]

    def test_first_state_is_initial(self, example):
        p, gamma, delta = example
        psm = generate_psm(gamma, delta)
        assert psm.initial_states == [psm.states[0]]

    def test_intervals_record_trace_position(self, example):
        p, gamma, delta = example
        states = generate_psm(gamma, delta).states
        interval = states[1].intervals[0]
        assert (interval.trace_id, interval.start, interval.stop) == (0, 3, 5)


class TestValidation:
    def test_short_power_trace_rejected(self, example):
        p, gamma, _ = example
        with pytest.raises(ValueError):
            generate_psm(gamma, PowerTrace([1.0]))

    def test_empty_proposition_trace_yields_empty_psm(self):
        psm = generate_psm(PropositionTrace([]), PowerTrace([]))
        assert len(psm) == 0

    def test_generated_psm_validates(self, example):
        p, gamma, delta = example
        generate_psm(gamma, delta).validate()


class TestGeneratePsms:
    def test_one_psm_per_trace(self, example):
        p, gamma, delta = example
        gamma2 = PropositionTrace(list(gamma), trace_id=1)
        psms = generate_psms([gamma, gamma2], [delta, delta])
        assert len(psms) == 2
        assert psms[0].name == "psm_t0"
        assert psms[1].name == "psm_t1"

    def test_mismatched_counts_rejected(self, example):
        p, gamma, delta = example
        with pytest.raises(ValueError):
            generate_psms([gamma], [delta, delta])

    def test_wrong_trace_ids_rejected(self, example):
        p, gamma, delta = example
        bad = PropositionTrace(list(gamma), trace_id=5)
        with pytest.raises(ValueError):
            generate_psms([bad], [delta])

    def test_state_ids_globally_unique(self, example):
        p, gamma, delta = example
        gamma2 = PropositionTrace(list(gamma), trace_id=1)
        psms = generate_psms([gamma, gamma2], [delta, delta])
        ids = [s.sid for psm in psms for s in psm.states]
        assert len(set(ids)) == len(ids)


def psm_snapshot(psm):
    """Engine-independent view of a PSM, exact to the bit."""
    return (
        [
            (
                s.sid,
                repr(s.assertion),
                s.attributes.mu,
                s.attributes.sigma,
                s.attributes.n,
                tuple(
                    (iv.trace_id, iv.start, iv.stop) for iv in s.intervals
                ),
            )
            for s in psm.states
        ],
        [
            (t.src, t.dst, repr(t.enabling)) for t in psm.transitions
        ],
        [s.sid for s in psm.initial_states],
    )


class TestEngineEquivalence:
    """The RLE fast path must emit bit-identical PSMs to the scan oracle."""

    def by_engine(self, gamma, delta, engine):
        reset_state_ids()
        return generate_psm(gamma, delta, engine=engine)

    def test_fig5_example_identical(self, example):
        p, gamma, delta = example
        scan = psm_snapshot(self.by_engine(gamma, delta, "scan"))
        rle = psm_snapshot(self.by_engine(gamma, delta, "rle"))
        assert rle == scan

    def test_randomized_traces_identical(self):
        rng = np.random.default_rng(99)
        for _ in range(50):
            size = int(rng.integers(1, 4))
            length = int(rng.integers(0, 40))
            indices = []
            while len(indices) < length:
                indices.extend(
                    [int(rng.integers(0, size))] * int(rng.integers(1, 5))
                )
            gamma = PropositionTrace.from_indices(
                np.asarray(indices[:length], dtype=np.int32), props(size), 0
            )
            delta = PowerTrace(np.abs(rng.normal(3.0, 1.0, length)))
            scan = psm_snapshot(self.by_engine(gamma, delta, "scan"))
            rle = psm_snapshot(self.by_engine(gamma, delta, "rle"))
            assert rle == scan

    def test_unknown_engine_rejected(self, example):
        p, gamma, delta = example
        with pytest.raises(ValueError):
            generate_psm(gamma, delta, engine="bogus")


class TestEndToEndFromMining:
    def test_fig3_to_fig5(self, fig3_trace, fig3_power, fig3_miner):
        """Full path: Fig. 3 functional trace -> Fig. 5 PSM."""
        result = fig3_miner.mine(fig3_trace)
        psm = generate_psm(result.proposition_trace, fig3_power)
        assert [str(s.assertion) for s in psm.states] == [
            "p_a U p_b",
            "p_b U p_c",
            "p_c X p_d",
        ]
