"""Tests for the PSMGenerator procedure (paper Fig. 4)."""

import pytest

from repro.core.generator import generate_psm, generate_psms
from repro.core.mining import AssertionMiner
from repro.core.propositions import (
    Proposition,
    PropositionTrace,
    VarEqualsConst,
)
from repro.core.temporal import NextAssertion, UntilAssertion
from repro.traces.power import PowerTrace


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


@pytest.fixture
def example():
    p = props(4)
    gamma = PropositionTrace(
        [p[0], p[0], p[0], p[1], p[1], p[1], p[2], p[3]]
    )
    delta = PowerTrace(
        [3.349, 3.339, 3.353, 1.902, 1.906, 1.944, 3.350, 3.343]
    )
    return p, gamma, delta


class TestFig5Example:
    def test_three_states_chain(self, example):
        p, gamma, delta = example
        psm = generate_psm(gamma, delta)
        assert len(psm) == 3
        assert len(psm.transitions) == 2
        assert psm.is_chain()

    def test_state_assertions(self, example):
        p, gamma, delta = example
        states = generate_psm(gamma, delta).states
        assert states[0].assertion == UntilAssertion(p[0], p[1])
        assert states[1].assertion == UntilAssertion(p[1], p[2])
        assert states[2].assertion == NextAssertion(p[2], p[3])

    def test_power_attributes(self, example):
        p, gamma, delta = example
        states = generate_psm(gamma, delta).states
        assert states[0].mu == pytest.approx(
            (3.349 + 3.339 + 3.353) / 3
        )
        assert states[0].n == 3
        assert states[1].mu == pytest.approx((1.902 + 1.906 + 1.944) / 3)
        assert states[2].mu == pytest.approx(3.350)
        assert states[2].n == 1

    def test_enabling_functions_are_exit_propositions(self, example):
        """The transition guard is the FIFO's f[1] at recognition time."""
        p, gamma, delta = example
        psm = generate_psm(gamma, delta)
        transitions = psm.transitions
        assert transitions[0].enabling is p[1]
        assert transitions[1].enabling is p[2]

    def test_first_state_is_initial(self, example):
        p, gamma, delta = example
        psm = generate_psm(gamma, delta)
        assert psm.initial_states == [psm.states[0]]

    def test_intervals_record_trace_position(self, example):
        p, gamma, delta = example
        states = generate_psm(gamma, delta).states
        interval = states[1].intervals[0]
        assert (interval.trace_id, interval.start, interval.stop) == (0, 3, 5)


class TestValidation:
    def test_short_power_trace_rejected(self, example):
        p, gamma, _ = example
        with pytest.raises(ValueError):
            generate_psm(gamma, PowerTrace([1.0]))

    def test_empty_proposition_trace_yields_empty_psm(self):
        psm = generate_psm(PropositionTrace([]), PowerTrace([]))
        assert len(psm) == 0

    def test_generated_psm_validates(self, example):
        p, gamma, delta = example
        generate_psm(gamma, delta).validate()


class TestGeneratePsms:
    def test_one_psm_per_trace(self, example):
        p, gamma, delta = example
        gamma2 = PropositionTrace(list(gamma), trace_id=1)
        psms = generate_psms([gamma, gamma2], [delta, delta])
        assert len(psms) == 2
        assert psms[0].name == "psm_t0"
        assert psms[1].name == "psm_t1"

    def test_mismatched_counts_rejected(self, example):
        p, gamma, delta = example
        with pytest.raises(ValueError):
            generate_psms([gamma], [delta, delta])

    def test_wrong_trace_ids_rejected(self, example):
        p, gamma, delta = example
        bad = PropositionTrace(list(gamma), trace_id=5)
        with pytest.raises(ValueError):
            generate_psms([bad], [delta])

    def test_state_ids_globally_unique(self, example):
        p, gamma, delta = example
        gamma2 = PropositionTrace(list(gamma), trace_id=1)
        psms = generate_psms([gamma, gamma2], [delta, delta])
        ids = [s.sid for psm in psms for s in psm.states]
        assert len(set(ids)) == len(ids)


class TestEndToEndFromMining:
    def test_fig3_to_fig5(self, fig3_trace, fig3_power, fig3_miner):
        """Full path: Fig. 3 functional trace -> Fig. 5 PSM."""
        result = fig3_miner.mine(fig3_trace)
        psm = generate_psm(result.proposition_trace, fig3_power)
        assert [str(s.assertion) for s in psm.states] == [
            "p_a U p_b",
            "p_b U p_c",
            "p_c X p_d",
        ]
