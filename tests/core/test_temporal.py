"""Tests for temporal assertions."""

import pytest

from repro.core.propositions import Proposition, PropositionTrace, VarEqualsConst
from repro.core.temporal import (
    ChoiceAssertion,
    NextAssertion,
    SequenceAssertion,
    UntilAssertion,
    base_assertions,
)


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


@pytest.fixture
def p():
    return props(5)


class TestUntil:
    def test_match_run(self, p):
        trace = PropositionTrace([p[0], p[0], p[0], p[1]])
        assertion = UntilAssertion(p[0], p[1])
        assert assertion.match(trace, 0) == 2

    def test_match_single_instant_body(self, p):
        # simulation semantics allow a one-instant body
        trace = PropositionTrace([p[0], p[1]])
        assert UntilAssertion(p[0], p[1]).match(trace, 0) == 0

    def test_match_wrong_exit(self, p):
        trace = PropositionTrace([p[0], p[0], p[2]])
        assert UntilAssertion(p[0], p[1]).match(trace, 0) is None

    def test_match_wrong_entry(self, p):
        trace = PropositionTrace([p[2], p[1]])
        assert UntilAssertion(p[0], p[1]).match(trace, 0) is None

    def test_match_at_trace_end(self, p):
        trace = PropositionTrace([p[0], p[0]])
        assert UntilAssertion(p[0], p[1]).match(trace, 0) is None

    def test_props_and_display(self, p):
        assertion = UntilAssertion(p[0], p[1])
        assert assertion.first_proposition() is p[0]
        assert assertion.exit_proposition() is p[1]
        assert str(assertion) == "p_0 U p_1"

    def test_equality(self, p):
        assert UntilAssertion(p[0], p[1]) == UntilAssertion(p[0], p[1])
        assert UntilAssertion(p[0], p[1]) != UntilAssertion(p[1], p[0])
        assert UntilAssertion(p[0], p[1]) != NextAssertion(p[0], p[1])


class TestNext:
    def test_match(self, p):
        trace = PropositionTrace([p[0], p[1]])
        assert NextAssertion(p[0], p[1]).match(trace, 0) == 0

    def test_match_fails_on_repeat(self, p):
        trace = PropositionTrace([p[0], p[0]])
        assert NextAssertion(p[0], p[1]).match(trace, 0) is None

    def test_display(self, p):
        assert str(NextAssertion(p[0], p[1])) == "p_0 X p_1"


class TestSequence:
    def test_flattens_nested(self, p):
        inner = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[1], p[2])]
        )
        outer = SequenceAssertion([inner, NextAssertion(p[2], p[3])])
        assert len(outer.parts) == 3

    def test_requires_two_parts(self, p):
        with pytest.raises(ValueError):
            SequenceAssertion([UntilAssertion(p[0], p[1])])

    def test_rejects_choice_parts(self, p):
        choice = ChoiceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[2], p[3])]
        )
        with pytest.raises(ValueError):
            SequenceAssertion([choice, NextAssertion(p[0], p[1])])

    def test_match_cascade(self, p):
        # p0 p0 p1 p1 p2 : {p0 U p1 ; p1 U p2} holds on [0,3]
        trace = PropositionTrace([p[0], p[0], p[1], p[1], p[2]])
        seq = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[1], p[2])]
        )
        assert seq.match(trace, 0) == 3

    def test_match_broken_cascade(self, p):
        trace = PropositionTrace([p[0], p[0], p[1], p[3]])
        seq = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[1], p[2])]
        )
        assert seq.match(trace, 0) is None

    def test_first_and_exit(self, p):
        seq = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), NextAssertion(p[1], p[2])]
        )
        assert seq.first_proposition() is p[0]
        assert seq.exit_proposition() is p[2]

    def test_display(self, p):
        seq = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), NextAssertion(p[1], p[2])]
        )
        assert str(seq) == "{p_0 U p_1; p_1 X p_2}"


class TestChoice:
    def test_flattens_nested(self, p):
        inner = ChoiceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[2], p[3])]
        )
        outer = ChoiceAssertion([inner, NextAssertion(p[1], p[2])])
        assert len(outer.parts) == 3

    def test_multiplicity(self, p):
        u = UntilAssertion(p[0], p[1])
        choice = ChoiceAssertion([u, u, NextAssertion(p[1], p[2])])
        assert choice.multiplicity(u) == 2
        assert len(choice.alternatives()) == 2

    def test_match_tries_alternatives(self, p):
        trace = PropositionTrace([p[2], p[2], p[3]])
        choice = ChoiceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[2], p[3])]
        )
        assert choice.match(trace, 0) == 1
        assert choice.matching_alternative(trace, 0) == UntilAssertion(
            p[2], p[3]
        )

    def test_no_unique_boundary_props(self, p):
        choice = ChoiceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[2], p[3])]
        )
        with pytest.raises(ValueError):
            choice.first_proposition()
        with pytest.raises(ValueError):
            choice.exit_proposition()

    def test_equality_is_order_insensitive(self, p):
        a = ChoiceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[2], p[3])]
        )
        b = ChoiceAssertion(
            [UntilAssertion(p[2], p[3]), UntilAssertion(p[0], p[1])]
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_propositions_union(self, p):
        choice = ChoiceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[2], p[3])]
        )
        assert set(choice.propositions()) == {p[0], p[1], p[2], p[3]}


class TestBaseAssertions:
    def test_simple_assertion_observes_itself(self, p):
        u = UntilAssertion(p[0], p[1])
        assert base_assertions(u) == (u,)

    def test_sequence_observes_itself(self, p):
        seq = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), NextAssertion(p[1], p[2])]
        )
        assert base_assertions(seq) == (seq,)

    def test_choice_observes_members_with_multiplicity(self, p):
        u = UntilAssertion(p[0], p[1])
        v = UntilAssertion(p[2], p[3])
        choice = ChoiceAssertion([u, u, v])
        assert base_assertions(choice) == (u, u, v)
