"""Tests for PSM export: DOT, JSON round trip, SystemC, labeler rebuild."""

import json

import numpy as np
import pytest

from repro.core.attributes import Interval, PowerAttributes
from repro.core.export import (
    labeler_from_psms,
    load_psms,
    psms_from_json,
    psms_to_json,
    save_psms,
    to_dot,
    to_systemc,
)
from repro.core.propositions import Proposition, VarCompare, VarEqualsConst
from repro.core.psm import PSM, PowerState, RegressionPower, Transition
from repro.core.temporal import (
    ChoiceAssertion,
    NextAssertion,
    SequenceAssertion,
    UntilAssertion,
)


def fig2_psm():
    """A hand-built PSM in the spirit of the paper's Fig. 2.

    Three power states (off 0mW, idle 15mW, active 100mW) controlled by
    ``on``, ``ready`` and ``start`` input conditions.
    """
    on = Proposition("p_on", [VarEqualsConst("on", 1, is_bool=True)])
    off = Proposition("p_off", [], [VarEqualsConst("on", 1, is_bool=True)])
    run = Proposition(
        "p_run",
        [
            VarEqualsConst("on", 1, is_bool=True),
            VarEqualsConst("start", 1, is_bool=True),
        ],
    )
    s_off = PowerState(
        assertion=UntilAssertion(off, on),
        attributes=PowerAttributes(0.001, 0.0, 10),
        intervals=[Interval(0, 0, 9)],
    )
    s_idle = PowerState(
        assertion=UntilAssertion(on, run),
        attributes=PowerAttributes(15.0, 0.1, 10),
        intervals=[Interval(0, 10, 19)],
    )
    s_active = PowerState(
        assertion=UntilAssertion(run, off),
        attributes=PowerAttributes(100.0, 1.0, 10),
        intervals=[Interval(0, 20, 29)],
    )
    psm = PSM("fig2")
    psm.add_state(s_off, initial=True)
    psm.add_state(s_idle)
    psm.add_state(s_active)
    psm.add_transition(Transition(s_off.sid, s_idle.sid, on))
    psm.add_transition(Transition(s_idle.sid, s_active.sid, run))
    psm.add_transition(Transition(s_active.sid, s_off.sid, off))
    return psm


class TestDot:
    def test_dot_structure(self):
        text = to_dot([fig2_psm()], title="fig2")
        assert text.startswith("digraph fig2")
        assert text.count("->") == 3
        assert "doublecircle" in text  # the initial state
        assert "mu=100" in text


class TestJsonRoundTrip:
    def test_round_trip_preserves_structure(self):
        psm = fig2_psm()
        restored = psms_from_json(psms_to_json([psm]))
        assert len(restored) == 1
        machine = restored[0]
        assert len(machine) == 3
        assert len(machine.transitions) == 3
        assert len(machine.initial_states) == 1
        mus = sorted(s.mu for s in machine.states)
        assert mus == pytest.approx([0.001, 15.0, 100.0])

    def test_round_trip_preserves_assertions(self):
        psm = fig2_psm()
        restored = psms_from_json(psms_to_json([psm]))[0]
        original = {str(s.assertion) for s in psm.states}
        assert {str(s.assertion) for s in restored.states} == original

    def test_round_trip_preserves_regression_model(self):
        psm = fig2_psm()
        psm.states[1].power_model = RegressionPower(0.5, 1.0, 0.88)
        restored = psms_from_json(psms_to_json([psm]))[0]
        model = restored.states[1].power_model
        assert isinstance(model, RegressionPower)
        assert model.slope == 0.5

    def test_round_trip_composite_assertions(self):
        p = [
            Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(4)
        ]
        seq = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), NextAssertion(p[1], p[2])]
        )
        choice = ChoiceAssertion([seq, UntilAssertion(p[3], p[1])])
        state = PowerState(
            assertion=choice,
            attributes=PowerAttributes(1.0, 0.0, 3),
            intervals=[Interval(0, 0, 2)],
        )
        psm = PSM("composite")
        psm.add_state(state, initial=True)
        restored = psms_from_json(psms_to_json([psm]))[0]
        assert str(restored.states[0].assertion) == str(choice)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "model.json"
        save_psms([fig2_psm()], path)
        assert json.loads(path.read_text())["psms"]
        restored = load_psms(path)
        assert len(restored[0]) == 3

    def test_comparison_atoms_serialised(self):
        p = Proposition(
            "p", [VarCompare("a", ">", "b")], [VarEqualsConst("a", 0)]
        )
        q = Proposition("q", [], [VarCompare("a", ">", "b")])
        state = PowerState(
            assertion=UntilAssertion(p, q),
            attributes=PowerAttributes(1.0, 0.0, 2),
            intervals=[Interval(0, 0, 1)],
        )
        psm = PSM()
        psm.add_state(state, initial=True)
        restored = psms_from_json(psms_to_json([psm]))[0]
        assertion = restored.states[0].assertion
        assert VarCompare("a", ">", "b") in assertion.left.positives


class TestSystemC:
    def test_module_skeleton(self):
        text = to_systemc([fig2_psm()], module_name="fig2_monitor")
        assert "SC_MODULE(fig2_monitor)" in text
        assert "sc_out<double> power;" in text
        assert "SC_CTOR(fig2_monitor)" in text
        assert "sensitive << clk.pos();" in text

    def test_states_and_guards_emitted(self):
        psm = fig2_psm()
        text = to_systemc([psm])
        for state in psm.states:
            assert f"case {state.sid}:" in text
        assert "(on.read() == 1)" in text

    def test_regression_state_emits_hamming_call(self):
        psm = fig2_psm()
        psm.states[1].power_model = RegressionPower(0.5, 1.0, 0.9)
        text = to_systemc([psm])
        assert "hamming_distance()" in text


class TestLabelerRebuild:
    def test_rebuilt_labeler_matches_states(self):
        psm = fig2_psm()
        labeler = labeler_from_psms([psm])
        # the off state's proposition: on == 0
        prop = labeler.label_assignment({"on": 0, "start": 0})
        assert prop is not None
        assert prop == psm.states[0].assertion.left

    def test_rebuilt_labeler_from_json(self):
        restored = psms_from_json(psms_to_json([fig2_psm()]))
        labeler = labeler_from_psms(restored)
        prop = labeler.label_assignment({"on": 1, "start": 1})
        assert prop == restored[0].states[2].assertion.left
