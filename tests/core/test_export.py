"""Tests for PSM export: DOT, JSON round trip, SystemC, labeler rebuild."""

import json

import numpy as np
import pytest

from repro.core.attributes import Interval, PowerAttributes
from repro.core.export import (
    BUNDLE_SCHEMA,
    ExportSchemaError,
    labeler_from_psms,
    load_bundle,
    load_psms,
    psms_from_json,
    psms_to_json,
    save_psms,
    to_dot,
    to_systemc,
)
from repro.core.stages.base import StageReport
from repro.traces.variables import bool_in
from repro.core.propositions import Proposition, VarCompare, VarEqualsConst
from repro.core.psm import PSM, PowerState, RegressionPower, Transition
from repro.core.temporal import (
    ChoiceAssertion,
    NextAssertion,
    SequenceAssertion,
    UntilAssertion,
)


def fig2_psm():
    """A hand-built PSM in the spirit of the paper's Fig. 2.

    Three power states (off 0mW, idle 15mW, active 100mW) controlled by
    ``on``, ``ready`` and ``start`` input conditions.
    """
    on = Proposition("p_on", [VarEqualsConst("on", 1, is_bool=True)])
    off = Proposition("p_off", [], [VarEqualsConst("on", 1, is_bool=True)])
    run = Proposition(
        "p_run",
        [
            VarEqualsConst("on", 1, is_bool=True),
            VarEqualsConst("start", 1, is_bool=True),
        ],
    )
    s_off = PowerState(
        assertion=UntilAssertion(off, on),
        attributes=PowerAttributes(0.001, 0.0, 10),
        intervals=[Interval(0, 0, 9)],
    )
    s_idle = PowerState(
        assertion=UntilAssertion(on, run),
        attributes=PowerAttributes(15.0, 0.1, 10),
        intervals=[Interval(0, 10, 19)],
    )
    s_active = PowerState(
        assertion=UntilAssertion(run, off),
        attributes=PowerAttributes(100.0, 1.0, 10),
        intervals=[Interval(0, 20, 29)],
    )
    psm = PSM("fig2")
    psm.add_state(s_off, initial=True)
    psm.add_state(s_idle)
    psm.add_state(s_active)
    psm.add_transition(Transition(s_off.sid, s_idle.sid, on))
    psm.add_transition(Transition(s_idle.sid, s_active.sid, run))
    psm.add_transition(Transition(s_active.sid, s_off.sid, off))
    return psm


class TestDot:
    def test_dot_structure(self):
        text = to_dot([fig2_psm()], title="fig2")
        assert text.startswith("digraph fig2")
        assert text.count("->") == 3
        assert "doublecircle" in text  # the initial state
        assert "mu=100" in text


class TestJsonRoundTrip:
    def test_round_trip_preserves_structure(self):
        psm = fig2_psm()
        restored = psms_from_json(psms_to_json([psm]))
        assert len(restored) == 1
        machine = restored[0]
        assert len(machine) == 3
        assert len(machine.transitions) == 3
        assert len(machine.initial_states) == 1
        mus = sorted(s.mu for s in machine.states)
        assert mus == pytest.approx([0.001, 15.0, 100.0])

    def test_round_trip_preserves_assertions(self):
        psm = fig2_psm()
        restored = psms_from_json(psms_to_json([psm]))[0]
        original = {str(s.assertion) for s in psm.states}
        assert {str(s.assertion) for s in restored.states} == original

    def test_round_trip_preserves_regression_model(self):
        psm = fig2_psm()
        psm.states[1].power_model = RegressionPower(0.5, 1.0, 0.88)
        restored = psms_from_json(psms_to_json([psm]))[0]
        model = restored.states[1].power_model
        assert isinstance(model, RegressionPower)
        assert model.slope == 0.5

    def test_round_trip_composite_assertions(self):
        p = [
            Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(4)
        ]
        seq = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), NextAssertion(p[1], p[2])]
        )
        choice = ChoiceAssertion([seq, UntilAssertion(p[3], p[1])])
        state = PowerState(
            assertion=choice,
            attributes=PowerAttributes(1.0, 0.0, 3),
            intervals=[Interval(0, 0, 2)],
        )
        psm = PSM("composite")
        psm.add_state(state, initial=True)
        restored = psms_from_json(psms_to_json([psm]))[0]
        assert str(restored.states[0].assertion) == str(choice)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "model.json"
        save_psms([fig2_psm()], path)
        assert json.loads(path.read_text())["psms"]
        restored = load_psms(path)
        assert len(restored[0]) == 3

    def test_comparison_atoms_serialised(self):
        p = Proposition(
            "p", [VarCompare("a", ">", "b")], [VarEqualsConst("a", 0)]
        )
        q = Proposition("q", [], [VarCompare("a", ">", "b")])
        state = PowerState(
            assertion=UntilAssertion(p, q),
            attributes=PowerAttributes(1.0, 0.0, 2),
            intervals=[Interval(0, 0, 1)],
        )
        psm = PSM()
        psm.add_state(state, initial=True)
        restored = psms_from_json(psms_to_json([psm]))[0]
        assertion = restored.states[0].assertion
        assert VarCompare("a", ">", "b") in assertion.left.positives


class TestSystemC:
    def test_module_skeleton(self):
        text = to_systemc([fig2_psm()], module_name="fig2_monitor")
        assert "SC_MODULE(fig2_monitor)" in text
        assert "sc_out<double> power;" in text
        assert "SC_CTOR(fig2_monitor)" in text
        assert "sensitive << clk.pos();" in text

    def test_states_and_guards_emitted(self):
        psm = fig2_psm()
        text = to_systemc([psm])
        for state in psm.states:
            assert f"case {state.sid}:" in text
        assert "(on.read() == 1)" in text

    def test_regression_state_emits_hamming_call(self):
        psm = fig2_psm()
        psm.states[1].power_model = RegressionPower(0.5, 1.0, 0.9)
        text = to_systemc([psm])
        assert "hamming_distance()" in text


def nondeterministic_psm():
    """A joined-style PSM: one guard enables two different successors."""
    psm = fig2_psm()
    on = psm.transitions[0].enabling
    psm.add_transition(
        Transition(psm.states[0].sid, psm.states[2].sid, on)
    )
    assert not psm.is_deterministic()
    return psm


class TestSchemaErrors:
    def test_future_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": "psmgen-psms/v99"}))
        with pytest.raises(ExportSchemaError) as excinfo:
            load_psms(path)
        assert excinfo.value.found == "psmgen-psms/v99"
        assert excinfo.value.expected == BUNDLE_SCHEMA

    def test_missing_schema_key_accepted_as_v1(self):
        payload = psms_to_json([fig2_psm()])
        del payload["schema"]
        assert len(psms_from_json(payload)[0]) == 3

    def test_non_object_payload_rejected(self):
        with pytest.raises(ExportSchemaError):
            psms_from_json([1, 2, 3])

    def test_missing_lists_rejected(self):
        with pytest.raises(ExportSchemaError):
            psms_from_json({"schema": BUNDLE_SCHEMA, "psms": []})

    def test_malformed_state_wrapped_not_keyerror(self):
        payload = psms_to_json([fig2_psm()])
        del payload["psms"][0]["states"][0]["mu"]
        with pytest.raises(ExportSchemaError):
            psms_from_json(payload)

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json at all")
        with pytest.raises(ExportSchemaError):
            load_psms(path)

    def test_schema_key_written_on_export(self):
        assert psms_to_json([fig2_psm()])["schema"] == BUNDLE_SCHEMA


class TestNonDeterministicRoundTrip:
    def test_joined_psm_survives_round_trip(self):
        psm = nondeterministic_psm()
        restored = psms_from_json(psms_to_json([psm]))[0]
        assert not restored.is_deterministic()
        assert len(restored.transitions) == len(psm.transitions)
        pairs = {(t.src, t.dst, str(t.enabling)) for t in psm.transitions}
        restored_pairs = {
            (t.src, t.dst, str(t.enabling)) for t in restored.transitions
        }
        assert restored_pairs == pairs


class TestBundleMetadata:
    def test_stage_reports_round_trip(self, tmp_path):
        reports = [
            StageReport("mine", 1.25, counters={"atoms": 7}),
            StageReport("generate", 0.5, status="resumed"),
        ]
        path = tmp_path / "model.json"
        save_psms([fig2_psm()], path, stage_reports=reports)
        bundle = load_bundle(path)
        assert [r.name for r in bundle.stage_reports] == ["mine", "generate"]
        assert bundle.stage_reports[0].counters == {"atoms": 7}
        assert bundle.stage_reports[1].resumed
        # PSMs still load cleanly through the plain reader
        assert len(load_psms(path)[0]) == 3

    def test_variables_round_trip(self, tmp_path):
        path = tmp_path / "model.json"
        save_psms(
            [fig2_psm()],
            path,
            variables=[bool_in("on"), bool_in("start")],
        )
        bundle = load_bundle(path)
        assert [(v.name, v.kind) for v in bundle.variables] == [
            ("on", "bool"),
            ("start", "bool"),
        ]

    def test_digest_tracks_content(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        save_psms([fig2_psm()], a)
        save_psms([nondeterministic_psm()], b)
        bundle_a, bundle_b = load_bundle(a), load_bundle(b)
        assert len(bundle_a.digest) == 12
        assert bundle_a.digest != bundle_b.digest
        assert bundle_a.schema == BUNDLE_SCHEMA

    def test_metadata_defaults_to_empty(self, tmp_path):
        path = tmp_path / "model.json"
        save_psms([fig2_psm()], path)
        bundle = load_bundle(path)
        assert bundle.variables == []
        assert bundle.stage_reports == []


class TestLabelerRebuild:
    def test_rebuilt_labeler_matches_states(self):
        psm = fig2_psm()
        labeler = labeler_from_psms([psm])
        # the off state's proposition: on == 0
        prop = labeler.label_assignment({"on": 0, "start": 0})
        assert prop is not None
        assert prop == psm.states[0].assertion.left

    def test_rebuilt_labeler_from_json(self):
        restored = psms_from_json(psms_to_json([fig2_psm()]))
        labeler = labeler_from_psms(restored)
        prop = labeler.label_assignment({"on": 1, "start": 1})
        assert prop == restored[0].states[2].assertion.left
