"""Tests for the PSM data structure (paper Definition 3)."""

import pytest

from repro.core.attributes import PowerAttributes
from repro.core.propositions import Proposition, VarEqualsConst
from repro.core.psm import (
    PSM,
    ConstantPower,
    PowerState,
    RegressionPower,
    Transition,
    find_state,
    state_universe,
    total_states,
    total_transitions,
)
from repro.core.temporal import UntilAssertion


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


def state(p, mu=1.0):
    return PowerState(
        assertion=UntilAssertion(p[0], p[1]),
        attributes=PowerAttributes(mu, 0.1, 5),
    )


class TestPowerState:
    def test_default_constant_output(self):
        p = props(2)
        s = state(p, mu=2.5)
        assert isinstance(s.power_model, ConstantPower)
        assert s.output() == 2.5
        assert s.output(100) == 2.5

    def test_regression_output_uses_distance(self):
        p = props(2)
        s = state(p)
        s.power_model = RegressionPower(0.5, 1.0, 0.9)
        assert s.output(4) == pytest.approx(3.0)
        assert s.is_data_dependent

    def test_attribute_shortcuts(self):
        p = props(2)
        s = state(p, mu=3.0)
        assert (s.mu, s.sigma, s.n) == (3.0, 0.1, 5)

    def test_identity_by_sid(self):
        p = props(2)
        a, b = state(p), state(p)
        assert a != b
        assert a.sid != b.sid


class TestPsmStructure:
    def test_add_duplicate_state_rejected(self):
        p = props(2)
        s = state(p)
        psm = PSM()
        psm.add_state(s)
        with pytest.raises(ValueError):
            psm.add_state(s)

    def test_transition_endpoints_checked(self):
        p = props(2)
        s = state(p)
        psm = PSM()
        psm.add_state(s)
        with pytest.raises(ValueError):
            psm.add_transition(Transition(s.sid, s.sid + 99, p[1]))

    def test_duplicate_transition_ignored(self):
        p = props(2)
        a, b = state(p), state(p)
        psm = PSM()
        psm.add_state(a)
        psm.add_state(b)
        t = Transition(a.sid, b.sid, p[1])
        psm.add_transition(t)
        psm.add_transition(t)
        assert len(psm.transitions) == 1

    def test_successors_predecessors(self):
        p = props(2)
        a, b = state(p), state(p)
        psm = PSM()
        psm.add_state(a)
        psm.add_state(b)
        psm.add_transition(Transition(a.sid, b.sid, p[1]))
        assert [t.dst for t in psm.successors(a.sid)] == [b.sid]
        assert [t.src for t in psm.predecessors(b.sid)] == [a.sid]
        assert psm.successors(b.sid) == []

    def test_mark_initial(self):
        p = props(2)
        a = state(p)
        psm = PSM()
        psm.add_state(a)
        psm.mark_initial(a.sid)
        psm.mark_initial(a.sid)  # idempotent
        assert psm.initial_states == [a]

    def test_is_chain(self):
        p = props(2)
        a, b = state(p), state(p)
        psm = PSM()
        psm.add_state(a, initial=True)
        psm.add_state(b)
        psm.add_transition(Transition(a.sid, b.sid, p[1]))
        assert psm.is_chain()
        psm.add_transition(Transition(a.sid, a.sid, p[0]))
        assert not psm.is_chain()

    def test_is_deterministic(self):
        p = props(2)
        a, b, c = state(p), state(p), state(p)
        psm = PSM()
        for s in (a, b, c):
            psm.add_state(s)
        psm.add_transition(Transition(a.sid, b.sid, p[1]))
        assert psm.is_deterministic()
        psm.add_transition(Transition(a.sid, c.sid, p[1]))
        assert not psm.is_deterministic()

    def test_validate_catches_dangling(self):
        p = props(2)
        a, b = state(p), state(p)
        psm = PSM()
        psm.add_state(a)
        psm.add_state(b)
        psm.add_transition(Transition(a.sid, b.sid, p[1]))
        psm._states.pop(b.sid)  # corrupt deliberately
        with pytest.raises(ValueError):
            psm.validate()


class TestReplaceStates:
    def _chain(self):
        p = props(3)
        a, b, c = state(p, 1.0), state(p, 1.0), state(p, 5.0)
        psm = PSM()
        psm.add_state(a, initial=True)
        psm.add_state(b)
        psm.add_state(c)
        psm.add_transition(Transition(a.sid, b.sid, p[1]))
        psm.add_transition(Transition(b.sid, c.sid, p[1]))
        return p, psm, (a, b, c)

    def test_drop_mode_removes_internal_transition(self):
        p, psm, (a, b, c) = self._chain()
        merged = state(p, 1.0)
        psm.replace_states([a.sid, b.sid], merged, internal="drop")
        assert len(psm) == 2
        assert all(t.src != t.dst for t in psm.transitions)
        assert psm.initial_states == [merged]

    def test_selfloop_mode_keeps_internal_transition(self):
        p, psm, (a, b, c) = self._chain()
        merged = state(p, 1.0)
        psm.replace_states([a.sid, b.sid], merged, internal="selfloop")
        loops = [t for t in psm.transitions if t.src == t.dst]
        assert len(loops) == 1

    def test_unknown_mode_rejected(self):
        p, psm, (a, b, c) = self._chain()
        with pytest.raises(ValueError):
            psm.replace_states([a.sid], state(p), internal="nope")

    def test_removing_foreign_state_rejected(self):
        p, psm, _ = self._chain()
        foreign = state(p)
        with pytest.raises(ValueError):
            psm.replace_states([foreign.sid], state(p))


class TestSetHelpers:
    def test_totals(self):
        p = props(2)
        a, b = state(p), state(p)
        psm = PSM()
        psm.add_state(a)
        psm.add_state(b)
        psm.add_transition(Transition(a.sid, b.sid, p[1]))
        assert total_states([psm, psm]) == 4
        assert total_transitions([psm]) == 1

    def test_find_state(self):
        p = props(2)
        a = state(p)
        psm = PSM()
        psm.add_state(a)
        found_psm, found = find_state([psm], a.sid)
        assert found is a and found_psm is psm
        with pytest.raises(KeyError):
            find_state([psm], a.sid + 1)

    def test_state_universe(self):
        p = props(2)
        a, b = state(p), state(p)
        m1, m2 = PSM(), PSM()
        m1.add_state(a)
        m2.add_state(b)
        universe = state_universe([m1, m2])
        assert set(universe) == {a.sid, b.sid}
