"""Tests for the simplify procedure (paper Sec. IV, Fig. 6a)."""

import pytest

from repro.core.attributes import Interval
from repro.core.generator import generate_psm
from repro.core.mergeability import MergePolicy
from repro.core.propositions import Proposition, PropositionTrace, VarEqualsConst
from repro.core.simplify import coalesce_intervals, simplify, simplify_all
from repro.core.temporal import SequenceAssertion, UntilAssertion
from repro.traces.power import PowerTrace


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


def chain(power_values, prop_sequence):
    """Generate a chain PSM from explicit proposition/power sequences."""
    gamma = PropositionTrace(prop_sequence)
    delta = PowerTrace(power_values)
    return generate_psm(gamma, delta), delta


class TestCoalesce:
    def test_contiguous_fused(self):
        fused = coalesce_intervals([Interval(0, 0, 2), Interval(0, 3, 5)])
        assert fused == [Interval(0, 0, 5)]

    def test_gap_not_fused(self):
        kept = coalesce_intervals([Interval(0, 0, 2), Interval(0, 4, 5)])
        assert len(kept) == 2

    def test_different_traces_not_fused(self):
        kept = coalesce_intervals([Interval(0, 0, 2), Interval(1, 3, 5)])
        assert len(kept) == 2


class TestSimplify:
    def test_adjacent_similar_states_merge(self):
        p = props(3)
        # two until runs with identical power, then a different one
        sequence = [p[0]] * 4 + [p[1]] * 4 + [p[2]] * 4 + [p[0]]
        power = [1.0, 1.01, 0.99, 1.0] * 2 + [5.0, 5.1, 4.9, 5.0] + [1.0]
        psm, delta = chain(power, sequence)
        assert len(psm) == 3
        merged = simplify(psm, {0: delta}, MergePolicy(max_cv=None))
        assert len(merged) == 2
        first = merged.states[0]
        assert isinstance(first.assertion, SequenceAssertion)
        assert first.n == 8
        # attributes recomputed over [start_new, stop_new]
        assert first.mu == pytest.approx(sum(power[:8]) / 8)

    def test_dissimilar_states_not_merged(self):
        p = props(3)
        sequence = [p[0]] * 4 + [p[1]] * 4 + [p[2]]
        power = [1.0] * 4 + [9.0] * 4 + [1.0]
        psm, delta = chain(power, sequence)
        merged = simplify(psm, {0: delta}, MergePolicy(max_cv=None))
        assert len(merged) == 2

    def test_run_of_three_merges_to_one(self):
        p = props(4)
        sequence = [p[0]] * 3 + [p[1]] * 3 + [p[2]] * 3 + [p[3]]
        power = [2.0, 2.02, 1.98] * 3 + [2.0]
        psm, delta = chain(power, sequence)
        merged = simplify(psm, {0: delta}, MergePolicy(max_cv=None))
        assert len(merged) == 1
        assert merged.states[0].n == 9

    def test_merged_intervals_coalesce(self):
        p = props(3)
        sequence = [p[0]] * 4 + [p[1]] * 4 + [p[2]]
        power = [1.0, 1.01, 0.99, 1.0] * 2 + [1.0]
        psm, delta = chain(power, sequence)
        merged = simplify(psm, {0: delta}, MergePolicy(max_cv=None))
        state = merged.states[0]
        assert state.intervals == [Interval(0, 0, 7)]

    def test_chain_shape_preserved(self):
        p = props(4)
        sequence = (
            [p[0]] * 3 + [p[1]] * 3 + [p[2]] * 3 + [p[3]] * 3 + [p[0]]
        )
        power = (
            [1.0, 1.02, 0.98]
            + [1.01, 0.99, 1.0]
            + [7.0, 7.1, 6.9]
            + [7.02, 6.95, 7.05]
            + [1.0]
        )
        psm, delta = chain(power, sequence)
        merged = simplify(psm, {0: delta}, MergePolicy(max_cv=None))
        assert merged.is_chain()
        assert len(merged) == 2

    def test_initial_state_preserved(self):
        p = props(3)
        sequence = [p[0]] * 3 + [p[1]] * 3 + [p[2]]
        power = [1.0] * 6 + [1.0]
        psm, delta = chain(power, sequence)
        merged = simplify(psm, {0: delta}, MergePolicy(max_cv=None))
        assert len(merged.initial_states) == 1
        assert merged.initial_states[0] is merged.states[0]

    def test_input_psm_untouched(self):
        p = props(3)
        sequence = [p[0]] * 3 + [p[1]] * 3 + [p[2]]
        power = [1.0] * 6 + [1.0]
        psm, delta = chain(power, sequence)
        before = len(psm)
        simplify(psm, {0: delta}, MergePolicy(max_cv=None))
        assert len(psm) == before

    def test_non_chain_rejected(self):
        p = props(3)
        sequence = [p[0]] * 3 + [p[1]] * 3 + [p[2]]
        psm, delta = chain([1.0] * 7, sequence)
        from repro.core.psm import Transition

        # a second outgoing transition breaks the chain shape
        psm.add_transition(
            Transition(psm.states[0].sid, psm.states[0].sid, p[0])
        )
        with pytest.raises(ValueError):
            simplify(psm, {0: delta})

    def test_simplify_all(self):
        p = props(3)
        sequence = [p[0]] * 3 + [p[1]] * 3 + [p[2]]
        psm1, delta = chain([1.0] * 7, sequence)
        gamma2 = PropositionTrace(sequence, trace_id=0)
        psm2 = generate_psm(gamma2, delta)
        merged = simplify_all([psm1, psm2], {0: delta}, MergePolicy(max_cv=None))
        assert len(merged) == 2
        assert all(len(m) == 1 for m in merged)
