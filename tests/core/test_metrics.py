"""Tests for the accuracy metrics."""

import numpy as np
import pytest

from repro.core.metrics import mae, mean_power_error, mre, rmse
from repro.traces.power import PowerTrace


class TestMre:
    def test_perfect_estimate_is_zero(self):
        ref = PowerTrace([1.0, 2.0, 3.0])
        assert mre(ref, ref) == 0.0

    def test_constant_relative_error(self):
        ref = np.array([1.0, 2.0, 4.0])
        est = ref * 1.1
        assert mre(est, ref) == pytest.approx(10.0)

    def test_accepts_power_traces_and_arrays(self):
        ref = PowerTrace([1.0, 2.0])
        est = [1.1, 2.2]
        assert mre(est, ref) == pytest.approx(10.0)

    def test_zero_reference_floored(self):
        ref = np.array([0.0, 1.0])
        est = np.array([0.1, 1.0])
        value = mre(est, ref)
        assert np.isfinite(value)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mre([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mre([], [])


class TestOtherMetrics:
    def test_mae(self):
        assert mae([1.0, 3.0], [2.0, 2.0]) == pytest.approx(1.0)

    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_mean_power_error(self):
        assert mean_power_error([2.0, 2.0], [1.0, 1.0]) == pytest.approx(
            100.0
        )

    def test_mean_power_error_zero_reference(self):
        assert mean_power_error([0.0], [0.0]) == 0.0
        assert mean_power_error([1.0], [0.0]) == float("inf")
