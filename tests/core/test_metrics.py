"""Tests for the accuracy metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    mae,
    mean_power_error,
    mre,
    rmse,
    windowed_mre,
)
from repro.traces.power import PowerTrace


class TestMre:
    def test_perfect_estimate_is_zero(self):
        ref = PowerTrace([1.0, 2.0, 3.0])
        assert mre(ref, ref) == 0.0

    def test_constant_relative_error(self):
        ref = np.array([1.0, 2.0, 4.0])
        est = ref * 1.1
        assert mre(est, ref) == pytest.approx(10.0)

    def test_accepts_power_traces_and_arrays(self):
        ref = PowerTrace([1.0, 2.0])
        est = [1.1, 2.2]
        assert mre(est, ref) == pytest.approx(10.0)

    def test_zero_reference_floored(self):
        ref = np.array([0.0, 1.0])
        est = np.array([0.1, 1.0])
        value = mre(est, ref)
        assert np.isfinite(value)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mre([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mre([], [])


class TestWindowedMre:
    def test_tiles_the_trace_inclusively(self):
        report = windowed_mre([1.0] * 5, [1.0] * 5, 2)
        assert report.bounds == [(0, 1), (2, 3), (4, 4)]
        assert report.scores == [0.0, 0.0, 0.0]
        assert report.skipped == 0

    def test_empty_trace_yields_no_windows(self):
        report = windowed_mre([], [], 4)
        assert report.bounds == []
        assert report.scores == []
        assert report.skipped == 0
        assert report.mean is None
        assert report.worst is None

    def test_single_instant_window_is_defined(self):
        # A trailing one-instant window must score, not raise.
        report = windowed_mre([1.1, 2.0, 3.3], [1.0, 2.0, 3.0], 2)
        assert report.bounds[-1] == (2, 2)
        assert report.scores[-1] == pytest.approx(10.0)

    def test_zero_power_window_skipped_with_count(self):
        est = [0.5, 0.5, 1.0, 1.0]
        ref = [0.0, 0.0, 1.0, 1.0]
        report = windowed_mre(est, ref, 2)
        assert report.scores[0] is None
        assert report.skipped == 1
        assert report.scores[1] == pytest.approx(0.0)
        # No NaN/inf sneaks into the aggregate.
        assert report.mean == pytest.approx(0.0)

    def test_all_windows_skipped(self):
        report = windowed_mre([1.0, 1.0], [0.0, 0.0], 1)
        assert report.scores == [None, None]
        assert report.skipped == 2
        assert report.mean is None
        assert report.worst is None

    def test_worst_window(self):
        est = [1.0, 1.0, 2.0, 2.0]
        ref = [1.0, 1.0, 1.0, 1.0]
        report = windowed_mre(est, ref, 2)
        assert report.worst == ((2, 3), pytest.approx(100.0))

    def test_per_window_floor_is_local(self):
        # Each window floors its denominator on its own mean, so a
        # locally-idle window is judged on its own power scale.
        est = [100.0, 100.0, 0.02, 0.02]
        ref = [100.0, 100.0, 0.01, 0.01]
        report = windowed_mre(est, ref, 2)
        assert report.scores[1] == pytest.approx(100.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            windowed_mre([1.0], [1.0, 2.0], 2)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            windowed_mre([1.0], [1.0], 0)

    def test_defined_pairs(self):
        report = windowed_mre([1.0, 2.0], [0.0, 2.0], 1)
        assert report.defined() == [((1, 1), 0.0)]


class TestOtherMetrics:
    def test_mae(self):
        assert mae([1.0, 3.0], [2.0, 2.0]) == pytest.approx(1.0)

    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_mean_power_error(self):
        assert mean_power_error([2.0, 2.0], [1.0, 1.0]) == pytest.approx(
            100.0
        )

    def test_mean_power_error_zero_reference(self):
        assert mean_power_error([0.0], [0.0]) == 0.0
        assert mean_power_error([1.0], [0.0]) == float("inf")
