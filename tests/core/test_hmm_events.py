"""Tests for wrong-state-prediction event extraction (core/hmm.py).

The events must exactly partition the unreliable instants of an
estimation result — including on desynchronised traces (Camellia's
short-TS model never saw clock gating) and traces ending in a random
(unknown-proposition) tail, where the final event must run to the very
last instant.  Trace generators are reused from the compiled-engine
suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import fit_benchmark
from repro.core.hmm import WspEvent, events_in_window, extract_wsp_events

from tests.core.test_compiled import CYCLES, random_trace, with_random_tail


class _FakeResult:
    def __init__(self, reliable):
        self.reliable = np.asarray(reliable, dtype=bool)


def assert_events_partition_unreliable(events, reliable):
    """Events are sorted, disjoint and cover exactly ~reliable."""
    unreliable = ~np.asarray(reliable, dtype=bool)
    covered = np.zeros(unreliable.size, dtype=bool)
    last_stop = -1
    for event in events:
        assert event.start <= event.stop
        assert event.start > last_stop  # sorted and disjoint
        assert not covered[event.start : event.stop + 1].any()
        covered[event.start : event.stop + 1] = True
        last_stop = event.stop
    assert np.array_equal(covered, unreliable)


class TestExtractSynthetic:
    def test_no_events_on_fully_reliable(self):
        assert extract_wsp_events(_FakeResult([True] * 5)) == []

    def test_empty_trace(self):
        assert extract_wsp_events(_FakeResult([])) == []

    def test_single_run(self):
        events = extract_wsp_events(_FakeResult([True, False, False, True]))
        assert events == [WspEvent(1, 2)]
        assert events[0].instants == 2

    def test_run_at_both_edges(self):
        events = extract_wsp_events(
            _FakeResult([False, True, True, False, False])
        )
        assert events == [WspEvent(0, 0), WspEvent(3, 4)]

    def test_fully_unreliable(self):
        events = extract_wsp_events(_FakeResult([False] * 4))
        assert events == [WspEvent(0, 3)]

    def test_events_in_window(self):
        events = [WspEvent(0, 2), WspEvent(5, 7), WspEvent(9, 9)]
        assert events_in_window(events, 2, 5) == [
            WspEvent(0, 2),
            WspEvent(5, 7),
        ]
        assert events_in_window(events, 3, 4) == []
        assert events_in_window(events, 8, 20) == [WspEvent(9, 9)]


class TestExtractOnTraces:
    """Event extraction over real estimation results."""

    @pytest.fixture(scope="class")
    def camellia(self):
        # Camellia's short verification suite does not cover clock
        # gating, so randomized long suites desynchronise the model —
        # the paper's own wrong-state-prediction scenario.
        return fit_benchmark("Camellia")

    def test_desynchronised_trace_events(self, camellia):
        trace = random_trace("Camellia", CYCLES, seed=11)
        result = camellia.flow.estimate(trace)
        events = extract_wsp_events(result)
        assert events, "expected desynchronisation on uncovered gating"
        assert_events_partition_unreliable(events, result.reliable)

    def test_trailing_tail_final_event_reaches_end(self, camellia):
        trace = with_random_tail(
            random_trace("Camellia", CYCLES, seed=12), tail=24, seed=13
        )
        result = camellia.flow.estimate(trace)
        events = extract_wsp_events(result)
        assert_events_partition_unreliable(events, result.reliable)
        # The random tail satisfies no mined proposition, so the trace
        # ends desynchronised and the last event must reach the end.
        assert not result.reliable[-1]
        assert events[-1].stop == len(trace) - 1

    def test_event_count_matches_total_desync(self, camellia):
        trace = random_trace("Camellia", CYCLES, seed=14)
        result = camellia.flow.estimate(trace)
        events = extract_wsp_events(result)
        total = sum(event.instants for event in events)
        assert total == int((~result.reliable).sum())
