"""Tests for the end-to-end flow (paper Fig. 1)."""

import numpy as np
import pytest

from repro.core.mergeability import MergePolicy
from repro.core.mining import MinerConfig
from repro.core.pipeline import FlowConfig, PsmFlow, fit_flow
from repro.core.psm import total_states
from repro.traces.functional import FunctionalTrace
from repro.traces.power import PowerTrace
from repro.traces.variables import int_in


def world(pattern, seed=0):
    values = []
    for mode, count in pattern:
        values.extend([mode] * count)
    trace = FunctionalTrace([int_in("x", 2)], {"x": values})
    levels = {0: 1.0, 1: 5.0, 2: 2.0}
    rng = np.random.default_rng(seed)
    power = PowerTrace(
        [levels[v] * (1 + rng.normal(0, 0.002)) for v in values]
    )
    return trace, power


def config(**overrides):
    base = dict(
        miner=MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0),
        merge=MergePolicy(max_cv=None),
    )
    base.update(overrides)
    return FlowConfig(**base)


class TestFit:
    def test_basic_fit(self):
        trace, power = world([(0, 5), (1, 5), (0, 5), (1, 5), (0, 2)])
        flow = PsmFlow(config()).fit([trace], [power])
        assert flow.fitted
        assert flow.report.n_states < flow.report.n_raw_states
        assert flow.report.training_instants == len(trace)

    def test_multiple_training_traces(self):
        t1, p1 = world([(0, 5), (1, 5), (0, 3)])
        t2, p2 = world([(0, 5), (2, 5), (0, 3)], seed=1)
        flow = PsmFlow(config()).fit([t1, t2], [p1, p2])
        # idle states of both traces join into one machine
        assert flow.report.n_psms == 1

    def test_estimate_before_fit_rejected(self):
        flow = PsmFlow()
        with pytest.raises(RuntimeError):
            flow.estimate(world([(0, 3)])[0])
        with pytest.raises(RuntimeError):
            flow.simulator()

    def test_length_mismatch_rejected(self):
        trace, power = world([(0, 5)])
        with pytest.raises(ValueError):
            PsmFlow().fit([trace], [PowerTrace([1.0])])

    def test_counts_mismatch_rejected(self):
        trace, power = world([(0, 5)])
        with pytest.raises(ValueError):
            PsmFlow().fit([trace], [power, power])

    def test_no_traces_rejected(self):
        with pytest.raises(ValueError):
            PsmFlow().fit([], [])

    def test_fit_flow_convenience(self):
        trace, power = world([(0, 5), (1, 5), (0, 2)])
        flow = fit_flow([trace], [power], config())
        assert flow.fitted


class TestAblationFlags:
    def test_no_simplify_keeps_chains_longer(self):
        trace, power = world([(0, 5), (1, 5)] * 6 + [(0, 2)])
        full = PsmFlow(config()).fit([trace], [power])
        no_join = PsmFlow(config(apply_join=False)).fit([trace], [power])
        assert no_join.report.n_states >= full.report.n_states

    def test_no_optimisation_equals_raw(self):
        trace, power = world([(0, 5), (1, 5)] * 4 + [(0, 2)])
        flow = PsmFlow(
            config(apply_simplify=False, apply_join=False, apply_refine=False)
        ).fit([trace], [power])
        assert flow.report.n_states == flow.report.n_raw_states

    def test_raw_psms_survive_optimisation(self):
        trace, power = world([(0, 5), (1, 5)] * 4 + [(0, 2)])
        flow = PsmFlow(config()).fit([trace], [power])
        assert total_states(flow.raw_psms) == flow.report.n_raw_states
        # raw chain states keep constant outputs even if refine ran
        for psm in flow.raw_psms:
            psm.validate()


class TestEvaluate:
    def test_evaluate_returns_metrics(self):
        trace, power = world([(0, 5), (1, 5), (0, 5), (1, 5), (0, 2)])
        flow = PsmFlow(config()).fit([trace], [power])
        scores = flow.evaluate(trace, power)
        assert set(scores) == {
            "mre",
            "mae",
            "rmse",
            "wsp",
            "wrong_state_pct",
            "desync_fraction",
            "estimation_time",
        }
        assert scores["mre"] < 1.0  # essentially exact on the trainset

    def test_report_row(self):
        trace, power = world([(0, 5), (1, 5), (0, 2)])
        flow = PsmFlow(config()).fit([trace], [power])
        row = flow.report.row()
        assert row[0] == len(trace)
