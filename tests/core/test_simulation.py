"""Tests for PSM simulation (paper Sec. III-C and Sec. V)."""

import numpy as np
import pytest

from repro.core.generator import generate_psm, generate_psms
from repro.core.mergeability import MergePolicy
from repro.core.mining import AssertionMiner, MinerConfig
from repro.core.pipeline import FlowConfig, PsmFlow
from repro.core.propositions import Proposition, PropositionTrace, VarEqualsConst
from repro.core.simulation import (
    EXIT,
    STAY,
    VIOLATION,
    MultiPsmSimulator,
    SinglePsmSimulator,
    StateTracker,
)
from repro.core.attributes import PowerAttributes
from repro.core.psm import PowerState
from repro.core.temporal import (
    ChoiceAssertion,
    NextAssertion,
    SequenceAssertion,
    UntilAssertion,
)
from repro.traces.functional import FunctionalTrace
from repro.traces.power import PowerTrace
from repro.traces.variables import int_in


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


def state_for(assertion, mu=1.0, n=4):
    return PowerState(
        assertion=assertion, attributes=PowerAttributes(mu, 0.0, n)
    )


class TestStateTracker:
    def test_until_stay_and_exit(self):
        p = props(3)
        tracker = StateTracker(state_for(UntilAssertion(p[0], p[1])))
        assert tracker.enter(p[0])
        assert tracker.advance(p[0])[0] == STAY
        assert tracker.advance(p[1])[0] == EXIT

    def test_until_violation(self):
        p = props(3)
        tracker = StateTracker(state_for(UntilAssertion(p[0], p[1])))
        tracker.enter(p[0])
        assert tracker.advance(p[2])[0] == VIOLATION

    def test_next_exit_immediately(self):
        p = props(3)
        tracker = StateTracker(state_for(NextAssertion(p[0], p[1])))
        tracker.enter(p[0])
        assert tracker.advance(p[1])[0] == EXIT

    def test_next_violation_on_repeat(self):
        p = props(3)
        tracker = StateTracker(state_for(NextAssertion(p[0], p[1])))
        tracker.enter(p[0])
        assert tracker.advance(p[0])[0] == VIOLATION

    def test_sequence_cascade(self):
        p = props(3)
        seq = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[1], p[2])]
        )
        tracker = StateTracker(state_for(seq))
        tracker.enter(p[0])
        assert tracker.advance(p[0])[0] == STAY
        assert tracker.advance(p[1])[0] == STAY  # cascades into part 2
        assert tracker.advance(p[1])[0] == STAY
        assert tracker.advance(p[2])[0] == EXIT

    def test_choice_tracks_alternatives(self):
        p = props(4)
        choice = ChoiceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[0], p[2])]
        )
        tracker = StateTracker(state_for(choice))
        assert tracker.enter(p[0])
        verdict, satisfied = tracker.advance(p[2])
        assert verdict == EXIT
        assert satisfied == UntilAssertion(p[0], p[2])

    def test_choice_drops_violated_alternatives(self):
        p = props(4)
        choice = ChoiceAssertion(
            [NextAssertion(p[0], p[1]), UntilAssertion(p[0], p[2])]
        )
        tracker = StateTracker(state_for(choice))
        tracker.enter(p[0])
        # p0 repeats: the Next alternative dies, the Until one stays
        assert tracker.advance(p[0])[0] == STAY
        assert tracker.advance(p[2])[0] == EXIT

    def test_cannot_enter_wrong_prop(self):
        p = props(3)
        tracker = StateTracker(state_for(UntilAssertion(p[0], p[1])))
        assert not tracker.enter(p[2])
        assert not tracker.can_enter(None)

    def test_enter_anywhere_mid_sequence(self):
        p = props(3)
        seq = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[1], p[2])]
        )
        tracker = StateTracker(state_for(seq))
        assert tracker.can_enter_anywhere(p[1])
        assert tracker.enter_anywhere(p[1])
        assert tracker.advance(p[1])[0] == STAY
        assert tracker.advance(p[2])[0] == EXIT

    def test_stable_on_until_body(self):
        p = props(3)
        tracker = StateTracker(state_for(UntilAssertion(p[0], p[1])))
        tracker.enter(p[0])
        assert tracker.stable_on(p[0])
        assert not tracker.stable_on(p[1])

    def test_stable_on_false_for_next(self):
        p = props(3)
        tracker = StateTracker(state_for(NextAssertion(p[0], p[1])))
        tracker.enter(p[0])
        assert not tracker.stable_on(p[0])


def tiny_world():
    """A two-mode device: power follows x (0 = idle, 1 = busy)."""
    values = [0] * 5 + [1] * 5 + [0] * 5 + [1] * 5 + [0] * 3
    trace = FunctionalTrace([int_in("x", 2)], {"x": values})
    power = PowerTrace([1.0 if v == 0 else 5.0 for v in values])
    return trace, power


def fit_tiny():
    trace, power = tiny_world()
    config = FlowConfig(
        miner=MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0),
        merge=MergePolicy(max_cv=None),
    )
    flow = PsmFlow(config).fit([trace], [power])
    return flow, trace, power


class TestSinglePsmSimulator:
    def test_reproduces_training_power(self):
        flow, trace, power = fit_tiny()
        simulator = SinglePsmSimulator(
            flow.raw_psms[0], flow.mining.labeler
        )
        result = simulator.run(trace)
        # the trailing idle run is not a state of the chain (its until
        # pattern never completed in training), so the chain desyncs
        # there; everything before is reproduced exactly.
        assert np.allclose(result.estimated.values[:20], power.values[:20])
        assert result.desync_instants == 3

    def test_desyncs_on_unknown_behaviour(self):
        flow, trace, power = fit_tiny()
        simulator = SinglePsmSimulator(
            flow.raw_psms[0], flow.mining.labeler
        )
        unknown = FunctionalTrace([int_in("x", 2)], {"x": [0, 0, 2, 2, 0]})
        result = simulator.run(unknown)
        assert result.desync_instants > 0
        assert result.unknown_instants > 0

    def test_requires_initial_state(self):
        from repro.core.psm import PSM

        flow, _, _ = fit_tiny()
        with pytest.raises(ValueError):
            SinglePsmSimulator(PSM(), flow.mining.labeler)


class TestMultiPsmSimulator:
    def test_reproduces_training_power(self):
        flow, trace, power = fit_tiny()
        result = flow.estimate(trace)
        assert np.allclose(result.estimated.values, power.values, rtol=1e-6)
        assert result.desync_instants == 0
        assert result.state_sequence[0] is not None

    def test_generalises_to_longer_trace(self):
        flow, _, _ = fit_tiny()
        values = ([0] * 7 + [1] * 4) * 6
        trace = FunctionalTrace([int_in("x", 2)], {"x": values})
        expected = np.array([1.0 if v == 0 else 5.0 for v in values])
        result = flow.estimate(trace)
        assert np.allclose(result.estimated.values, expected, rtol=1e-6)

    def test_unknown_behaviour_desyncs_and_recovers(self):
        flow, _, _ = fit_tiny()
        values = [0] * 5 + [2] * 4 + [0] * 5 + [1] * 5 + [0] * 2
        trace = FunctionalTrace([int_in("x", 2)], {"x": values})
        result = flow.estimate(trace)
        assert result.desync_instants >= 4
        # resynchronises: the trailing behaviour is tracked again
        assert result.state_sequence[-1] is not None
        assert result.wrong_state_fraction > 0

    def test_desync_fallback_uses_last_valid_power(self):
        flow, _, _ = fit_tiny()
        values = [0] * 5 + [2] * 3 + [0] * 5
        trace = FunctionalTrace([int_in("x", 2)], {"x": values})
        result = flow.estimate(trace)
        assert result.estimated[5] == pytest.approx(1.0)

    def test_reliable_mask_marks_desync(self):
        flow, _, _ = fit_tiny()
        values = [0] * 5 + [2] * 3 + [0] * 5
        trace = FunctionalTrace([int_in("x", 2)], {"x": values})
        result = flow.estimate(trace)
        assert not result.reliable[6]
        assert result.reliable[2]

    def test_empty_trace(self):
        flow, _, _ = fit_tiny()
        trace = FunctionalTrace([int_in("x", 2)], {"x": []})
        result = flow.estimate(trace)
        assert len(result.estimated) == 0


def _labeler_for(p):
    """A labeler over the explicit one-hot propositions ``p``."""
    from repro.core.mining import PropositionLabeler

    atoms = [VarEqualsConst("x", i) for i in range(len(p))]
    universe = {}
    for i, prop in enumerate(p):
        row = np.array([j == i for j in range(len(p))], dtype=bool)
        universe[row.tobytes()] = prop
    return PropositionLabeler(atoms, universe)


class TestRevertMachinery:
    def _alias_machine(self):
        """prev --p0--> aliasA(1.0) and prev --p0--> aliasB(3.0).

        The aliases share the entry proposition p0 but exit differently
        (p1 vs p2): a genuine non-deterministic choice.
        """
        from repro.core.attributes import Interval
        from repro.core.psm import PSM, Transition

        p = props(3)
        prev = PowerState(
            assertion=UntilAssertion(p[1], p[0]),
            attributes=PowerAttributes(5.0, 0.0, 4),
            intervals=[Interval(0, 0, 3)],
        )
        alias_a = PowerState(
            assertion=UntilAssertion(p[0], p[1]),
            attributes=PowerAttributes(1.0, 0.0, 4),
            intervals=[Interval(0, 4, 7)],
        )
        alias_b = PowerState(
            assertion=UntilAssertion(p[0], p[2]),
            attributes=PowerAttributes(3.0, 0.0, 4),
            intervals=[Interval(0, 8, 11)],
        )
        psm = PSM("alias")
        psm.add_state(prev, initial=True)
        psm.add_state(alias_a)
        psm.add_state(alias_b)
        psm.add_transition(Transition(prev.sid, alias_a.sid, p[0]))
        psm.add_transition(Transition(prev.sid, alias_b.sid, p[0]))
        return p, psm, (prev, alias_a, alias_b)

    def test_wrong_alias_choice_corrected(self):
        p, psm, (prev, alias_a, alias_b) = self._alias_machine()
        simulator = MultiPsmSimulator([psm], _labeler_for(p))
        # p1 p1 | p0 p0 p0 | p2 : the p0 run actually belongs to aliasB
        trace = FunctionalTrace(
            [int_in("x", 2)], {"x": [1, 1, 0, 0, 0, 2]}
        )
        result = simulator.run(trace)
        # whatever the HMM picked first, the violation at p2 reverts the
        # choice and re-attributes the p0 run to the 3.0 alias
        assert np.allclose(result.estimated.values[2:5], 3.0)
        assert result.predictions == 1
        assert result.wrong_predictions in (0, 1)
        if result.wrong_predictions:
            assert result.reverted_instants == 3

    def test_banning_is_run_local(self):
        """A wrong prediction bans the path for the rest of the run but
        never mutates the shared HMM: repeated runs are identical."""
        p, psm, (prev, alias_a, alias_b) = self._alias_machine()
        simulator = MultiPsmSimulator([psm], _labeler_for(p))
        trace = FunctionalTrace(
            [int_in("x", 2)], {"x": [1, 1, 0, 0, 0, 2]}
        )
        hmm = simulator.hmm
        a_before = hmm.A.copy()
        first = simulator.run(trace)
        assert np.array_equal(hmm.A, a_before)
        second = simulator.run(trace)
        assert np.allclose(
            first.estimated.values, second.estimated.values
        )
        assert first.wrong_predictions == second.wrong_predictions


class TestMetricsExposure:
    def test_wsp_zero_without_predictions(self):
        flow, trace, _ = fit_tiny()
        result = flow.estimate(trace)
        assert 0.0 <= result.wsp <= 100.0

    def test_desync_fraction(self):
        flow, _, _ = fit_tiny()
        values = [0] * 5 + [2] * 5
        trace = FunctionalTrace([int_in("x", 2)], {"x": values})
        result = flow.estimate(trace)
        assert result.desync_fraction == pytest.approx(
            result.desync_instants / 10
        )
