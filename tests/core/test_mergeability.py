"""Tests for the merge decision (paper Sec. IV-A)."""

import numpy as np
import pytest
from scipy import stats

from repro.core.attributes import PowerAttributes
from repro.core.mergeability import (
    MergePolicy,
    single_observation_t_test,
    variance_f_test,
    welch_t_test,
)
from repro.core.propositions import Proposition, VarEqualsConst
from repro.core.psm import PowerState, RegressionPower
from repro.core.temporal import UntilAssertion


def attrs(mu, sigma, n):
    return PowerAttributes(mu=mu, sigma=sigma, n=n)


class TestWelch:
    def test_matches_scipy_on_samples(self):
        rng = np.random.default_rng(0)
        a = rng.normal(5.0, 1.0, 40)
        b = rng.normal(5.2, 1.5, 25)
        ours = welch_t_test(
            attrs(float(a.mean()), float(a.std()), len(a)),
            attrs(float(b.mean()), float(b.std()), len(b)),
        )
        _, scipy_p = stats.ttest_ind(a, b, equal_var=False)
        assert ours == pytest.approx(scipy_p, rel=1e-9)

    def test_identical_samples_merge(self):
        a = attrs(3.0, 0.5, 20)
        assert welch_t_test(a, a) == pytest.approx(1.0)

    def test_zero_variance_equal_means(self):
        assert welch_t_test(attrs(3.0, 0.0, 5), attrs(3.0, 0.0, 5)) == 1.0

    def test_zero_variance_distinct_means(self):
        assert welch_t_test(attrs(3.0, 0.0, 5), attrs(4.0, 0.0, 5)) == 0.0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            welch_t_test(attrs(1.0, 0.0, 1), attrs(1.0, 0.1, 5))

    def test_clearly_different_means_rejected(self):
        p = welch_t_test(attrs(1.0, 0.1, 30), attrs(2.0, 0.1, 30))
        assert p < 1e-6


class TestSingleObservation:
    def test_observation_at_mean_merges(self):
        p = single_observation_t_test(5.0, attrs(5.0, 1.0, 20))
        assert p == pytest.approx(1.0)

    def test_far_observation_rejected(self):
        p = single_observation_t_test(15.0, attrs(5.0, 1.0, 20))
        assert p < 0.001

    def test_zero_variance_sample(self):
        assert single_observation_t_test(5.0, attrs(5.0, 0.0, 5)) == 1.0
        assert single_observation_t_test(6.0, attrs(5.0, 0.0, 5)) == 0.0

    def test_needs_real_sample(self):
        with pytest.raises(ValueError):
            single_observation_t_test(1.0, attrs(1.0, 0.0, 1))


class TestVarianceFTest:
    def test_matches_scipy(self):
        a = attrs(1.0, 0.2, 12)
        b = attrs(1.0, 0.35, 8)
        var_a = 0.2 ** 2 * 12 / 11
        var_b = 0.35 ** 2 * 8 / 7
        expected = min(1.0, 2 * stats.f.sf(var_b / var_a, 7, 11))
        assert variance_f_test(a, b) == pytest.approx(expected, rel=1e-9)

    def test_symmetric(self):
        a = attrs(1.0, 0.2, 12)
        b = attrs(1.0, 0.6, 9)
        assert variance_f_test(a, b) == pytest.approx(variance_f_test(b, a))

    def test_equal_variances(self):
        a = attrs(1.0, 0.3, 10)
        assert variance_f_test(a, a) == pytest.approx(1.0)

    def test_zero_vs_nonzero(self):
        assert variance_f_test(attrs(1, 0.0, 5), attrs(1, 0.5, 5)) == 0.0
        assert variance_f_test(attrs(1, 0.0, 5), attrs(1, 0.0, 5)) == 1.0


class TestMergePolicy:
    def test_case1_next_next_within_epsilon(self):
        policy = MergePolicy(epsilon=0.5, epsilon_rel=0.0)
        assert policy.mergeable_attributes(
            attrs(1.0, 0.0, 1), attrs(1.3, 0.0, 1)
        )
        assert not policy.mergeable_attributes(
            attrs(1.0, 0.0, 1), attrs(1.6, 0.0, 1)
        )

    def test_case1_relative_epsilon(self):
        policy = MergePolicy(epsilon=0.0, epsilon_rel=0.1)
        assert policy.mergeable_attributes(
            attrs(10.0, 0.0, 1), attrs(10.9, 0.0, 1)
        )
        assert not policy.mergeable_attributes(
            attrs(10.0, 0.0, 1), attrs(11.5, 0.0, 1)
        )

    def test_case2_until_until_uses_welch(self):
        policy = MergePolicy(alpha=0.05, max_cv=None, variance_alpha=None)
        same = attrs(5.0, 1.0, 30)
        near = attrs(5.05, 1.0, 30)
        far = attrs(8.0, 1.0, 30)
        assert policy.mergeable_attributes(same, near)
        assert not policy.mergeable_attributes(same, far)

    def test_case3_until_next(self):
        policy = MergePolicy(alpha=0.05, max_cv=None)
        until = attrs(5.0, 1.0, 30)
        assert policy.mergeable_attributes(until, attrs(5.3, 0.0, 1))
        assert not policy.mergeable_attributes(until, attrs(15.0, 0.0, 1))
        # symmetric dispatch
        assert policy.mergeable_attributes(attrs(5.3, 0.0, 1), until)

    def test_variance_gate_blocks_incompatible_sigmas(self):
        policy = MergePolicy(alpha=0.05, max_cv=None, variance_alpha=0.01)
        tight = attrs(5.0, 0.01, 30)
        wide = attrs(5.1, 3.0, 30)
        # Welch alone would accept (the wide sigma hides the difference)
        assert welch_t_test(tight, wide) > 0.05
        assert not policy.mergeable_attributes(tight, wide)

    def test_max_cv_guard(self):
        policy = MergePolicy(max_cv=0.2, variance_alpha=None)
        high_cv = attrs(1.0, 0.5, 10)
        assert not policy.mergeable_attributes(high_cv, high_cv)

    def test_data_dependent_states_never_merge(self):
        prop = Proposition("p", [VarEqualsConst("x", 1)])
        assertion = UntilAssertion(
            prop, Proposition("q", [], [VarEqualsConst("x", 1)])
        )
        regular = PowerState(assertion=assertion, attributes=attrs(1, 0.1, 9))
        refined = PowerState(
            assertion=assertion,
            attributes=attrs(1, 0.1, 9),
            power_model=RegressionPower(0.1, 0.5, 0.9),
        )
        policy = MergePolicy(max_cv=None)
        assert policy.mergeable(regular, regular)
        assert not policy.mergeable(regular, refined)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": -1.0},
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"max_cv": 0.0},
            {"variance_alpha": 1.5},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MergePolicy(**kwargs)


class TestMergeabilityMatrix:
    """Batched pairwise decisions vs the scalar oracle."""

    POLICIES = [
        MergePolicy(),
        MergePolicy(
            epsilon=0.5,
            epsilon_rel=0.0,
            alpha=0.2,
            max_cv=None,
            variance_alpha=None,
        ),
        MergePolicy(
            epsilon=0.0,
            epsilon_rel=0.1,
            alpha=0.01,
            max_cv=0.1,
            variance_alpha=0.05,
        ),
    ]

    def random_attrs(self, rng, count):
        out = []
        for _ in range(count):
            kind = int(rng.integers(0, 5))
            if kind == 0:
                # next-based single observations
                out.append(attrs(float(rng.normal(5, 3)), 0.0, 1))
            elif kind == 1:
                # duplicate-prone grid values exercise the dedup path
                out.append(
                    attrs(
                        float(rng.integers(0, 3)) * 0.5,
                        float(rng.integers(0, 2)) * 0.25,
                        int(rng.integers(2, 4)),
                    )
                )
            elif kind == 2:
                # zero-mean lanes hit the mu == 0 low-sigma branch
                out.append(
                    attrs(
                        0.0,
                        float(rng.choice([0.0, 0.3])),
                        int(rng.integers(2, 10)),
                    )
                )
            elif kind == 3:
                # zero variance with n > 1: F-test/Welch fallbacks
                out.append(
                    attrs(float(rng.normal(10, 5)), 0.0, int(rng.integers(2, 8)))
                )
            else:
                out.append(
                    attrs(
                        float(rng.normal(3, 1)),
                        abs(float(rng.normal(0, 1))),
                        1
                        if rng.random() < 0.4
                        else int(rng.integers(2, 30)),
                    )
                )
        return out

    def test_matches_scalar_oracle(self):
        rng = np.random.default_rng(2024)
        for policy in self.POLICIES:
            for _ in range(6):
                batch = self.random_attrs(rng, int(rng.integers(2, 40)))
                matrix = policy.mergeability_matrix(batch)
                for i, a in enumerate(batch):
                    for j, b in enumerate(batch):
                        assert matrix[i, j] == policy.mergeable_attributes(
                            a, b
                        )

    def test_no_floating_point_warnings(self):
        # The lane kernel must keep every division/betainc operand
        # sanitized: zero-variance, n == 1 and duplicate rows together.
        rng = np.random.default_rng(7)
        batch = self.random_attrs(rng, 64)
        with np.errstate(all="raise"):
            for policy in self.POLICIES:
                policy.mergeability_matrix(batch)

    def test_scalar_fill_and_lane_kernel_agree(self):
        # Force both sides of the _SCALAR_MAX_UNIQUE dispatch on the same
        # unique rows.
        policy = MergePolicy()
        unique = np.array(
            [
                (3.0, 0.0, 1.0),
                (3.0001, 0.0, 1.0),
                (8.0, 0.0, 1.0),
                (3.0, 0.1, 5.0),
                (3.01, 0.12, 9.0),
                (3.0, 0.0, 4.0),
                (12.0, 0.4, 30.0),
                (0.0, 0.0, 6.0),
                (0.0, 0.3, 6.0),
                (12.1, 0.38, 40.0),
            ]
        )
        assert len(unique) > MergePolicy._SCALAR_MAX_UNIQUE
        lanes = policy._unique_mergeability_matrix(unique)
        saved = MergePolicy._SCALAR_MAX_UNIQUE
        try:
            MergePolicy._SCALAR_MAX_UNIQUE = len(unique) + 1
            scalar = policy._unique_mergeability_matrix(unique)
        finally:
            MergePolicy._SCALAR_MAX_UNIQUE = saved
        assert np.array_equal(lanes, scalar)

    def test_lookup_expands_to_matrix(self):
        policy = MergePolicy()
        rng = np.random.default_rng(3)
        batch = self.random_attrs(rng, 20)
        small, inverse = policy.mergeability_lookup(batch)
        assert len(inverse) == len(batch)
        expanded = small[np.ix_(inverse, inverse)]
        assert np.array_equal(expanded, policy.mergeability_matrix(batch))

    def test_symmetric_with_diagonal(self):
        policy = MergePolicy()
        rng = np.random.default_rng(5)
        batch = self.random_attrs(rng, 25)
        matrix = policy.mergeability_matrix(batch)
        assert np.array_equal(matrix, matrix.T)

    def test_empty_input(self):
        policy = MergePolicy()
        assert policy.mergeability_matrix([]).shape == (0, 0)
        small, inverse = policy.mergeability_lookup([])
        assert small.shape == (0, 0) and len(inverse) == 0
