"""Tests for the merge decision (paper Sec. IV-A)."""

import numpy as np
import pytest
from scipy import stats

from repro.core.attributes import PowerAttributes
from repro.core.mergeability import (
    MergePolicy,
    single_observation_t_test,
    variance_f_test,
    welch_t_test,
)
from repro.core.propositions import Proposition, VarEqualsConst
from repro.core.psm import PowerState, RegressionPower
from repro.core.temporal import UntilAssertion


def attrs(mu, sigma, n):
    return PowerAttributes(mu=mu, sigma=sigma, n=n)


class TestWelch:
    def test_matches_scipy_on_samples(self):
        rng = np.random.default_rng(0)
        a = rng.normal(5.0, 1.0, 40)
        b = rng.normal(5.2, 1.5, 25)
        ours = welch_t_test(
            attrs(float(a.mean()), float(a.std()), len(a)),
            attrs(float(b.mean()), float(b.std()), len(b)),
        )
        _, scipy_p = stats.ttest_ind(a, b, equal_var=False)
        assert ours == pytest.approx(scipy_p, rel=1e-9)

    def test_identical_samples_merge(self):
        a = attrs(3.0, 0.5, 20)
        assert welch_t_test(a, a) == pytest.approx(1.0)

    def test_zero_variance_equal_means(self):
        assert welch_t_test(attrs(3.0, 0.0, 5), attrs(3.0, 0.0, 5)) == 1.0

    def test_zero_variance_distinct_means(self):
        assert welch_t_test(attrs(3.0, 0.0, 5), attrs(4.0, 0.0, 5)) == 0.0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            welch_t_test(attrs(1.0, 0.0, 1), attrs(1.0, 0.1, 5))

    def test_clearly_different_means_rejected(self):
        p = welch_t_test(attrs(1.0, 0.1, 30), attrs(2.0, 0.1, 30))
        assert p < 1e-6


class TestSingleObservation:
    def test_observation_at_mean_merges(self):
        p = single_observation_t_test(5.0, attrs(5.0, 1.0, 20))
        assert p == pytest.approx(1.0)

    def test_far_observation_rejected(self):
        p = single_observation_t_test(15.0, attrs(5.0, 1.0, 20))
        assert p < 0.001

    def test_zero_variance_sample(self):
        assert single_observation_t_test(5.0, attrs(5.0, 0.0, 5)) == 1.0
        assert single_observation_t_test(6.0, attrs(5.0, 0.0, 5)) == 0.0

    def test_needs_real_sample(self):
        with pytest.raises(ValueError):
            single_observation_t_test(1.0, attrs(1.0, 0.0, 1))


class TestVarianceFTest:
    def test_matches_scipy(self):
        a = attrs(1.0, 0.2, 12)
        b = attrs(1.0, 0.35, 8)
        var_a = 0.2 ** 2 * 12 / 11
        var_b = 0.35 ** 2 * 8 / 7
        expected = min(1.0, 2 * stats.f.sf(var_b / var_a, 7, 11))
        assert variance_f_test(a, b) == pytest.approx(expected, rel=1e-9)

    def test_symmetric(self):
        a = attrs(1.0, 0.2, 12)
        b = attrs(1.0, 0.6, 9)
        assert variance_f_test(a, b) == pytest.approx(variance_f_test(b, a))

    def test_equal_variances(self):
        a = attrs(1.0, 0.3, 10)
        assert variance_f_test(a, a) == pytest.approx(1.0)

    def test_zero_vs_nonzero(self):
        assert variance_f_test(attrs(1, 0.0, 5), attrs(1, 0.5, 5)) == 0.0
        assert variance_f_test(attrs(1, 0.0, 5), attrs(1, 0.0, 5)) == 1.0


class TestMergePolicy:
    def test_case1_next_next_within_epsilon(self):
        policy = MergePolicy(epsilon=0.5, epsilon_rel=0.0)
        assert policy.mergeable_attributes(
            attrs(1.0, 0.0, 1), attrs(1.3, 0.0, 1)
        )
        assert not policy.mergeable_attributes(
            attrs(1.0, 0.0, 1), attrs(1.6, 0.0, 1)
        )

    def test_case1_relative_epsilon(self):
        policy = MergePolicy(epsilon=0.0, epsilon_rel=0.1)
        assert policy.mergeable_attributes(
            attrs(10.0, 0.0, 1), attrs(10.9, 0.0, 1)
        )
        assert not policy.mergeable_attributes(
            attrs(10.0, 0.0, 1), attrs(11.5, 0.0, 1)
        )

    def test_case2_until_until_uses_welch(self):
        policy = MergePolicy(alpha=0.05, max_cv=None, variance_alpha=None)
        same = attrs(5.0, 1.0, 30)
        near = attrs(5.05, 1.0, 30)
        far = attrs(8.0, 1.0, 30)
        assert policy.mergeable_attributes(same, near)
        assert not policy.mergeable_attributes(same, far)

    def test_case3_until_next(self):
        policy = MergePolicy(alpha=0.05, max_cv=None)
        until = attrs(5.0, 1.0, 30)
        assert policy.mergeable_attributes(until, attrs(5.3, 0.0, 1))
        assert not policy.mergeable_attributes(until, attrs(15.0, 0.0, 1))
        # symmetric dispatch
        assert policy.mergeable_attributes(attrs(5.3, 0.0, 1), until)

    def test_variance_gate_blocks_incompatible_sigmas(self):
        policy = MergePolicy(alpha=0.05, max_cv=None, variance_alpha=0.01)
        tight = attrs(5.0, 0.01, 30)
        wide = attrs(5.1, 3.0, 30)
        # Welch alone would accept (the wide sigma hides the difference)
        assert welch_t_test(tight, wide) > 0.05
        assert not policy.mergeable_attributes(tight, wide)

    def test_max_cv_guard(self):
        policy = MergePolicy(max_cv=0.2, variance_alpha=None)
        high_cv = attrs(1.0, 0.5, 10)
        assert not policy.mergeable_attributes(high_cv, high_cv)

    def test_data_dependent_states_never_merge(self):
        prop = Proposition("p", [VarEqualsConst("x", 1)])
        assertion = UntilAssertion(
            prop, Proposition("q", [], [VarEqualsConst("x", 1)])
        )
        regular = PowerState(assertion=assertion, attributes=attrs(1, 0.1, 9))
        refined = PowerState(
            assertion=assertion,
            attributes=attrs(1, 0.1, 9),
            power_model=RegressionPower(0.1, 0.5, 0.9),
        )
        policy = MergePolicy(max_cv=None)
        assert policy.mergeable(regular, regular)
        assert not policy.mergeable(regular, refined)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": -1.0},
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"max_cv": 0.0},
            {"variance_alpha": 1.5},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MergePolicy(**kwargs)
