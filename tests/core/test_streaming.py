"""Tests for the incremental training core (streaming window operators).

The batch pipeline is the equivalence oracle throughout: every streaming
operator — run stitching, atom discovery/statistics, minterm composition,
the full ``fit_stream`` flow — must reproduce its batch twin bit for bit
when drift never fires.
"""

import json

import numpy as np
import pytest

from repro.core.export import bundle_digest, load_bundle, psms_to_json
from repro.core.mining import AssertionMiner, MinerConfig
from repro.core.pipeline import FlowConfig, PsmFlow
from repro.core.psm import reset_state_ids
from repro.core.stages import StreamMiningStage, build_streaming_stages
from repro.core.streaming import (
    AtomDiscovery,
    AtomStats,
    BundlePublisher,
    DriftDetector,
    DriftPolicy,
    MemoryWindowSource,
    MintermStream,
    ReaderWindowSource,
    StreamingMiner,
    TraceWindow,
    WindowSummary,
    as_window_source,
)
from repro.core.propositions import run_length_encode
from repro.core.xu import RunLengthStitcher
from repro.traces.functional import FunctionalTrace
from repro.traces.io import BinaryTraceReader, save_training_bin
from repro.traces.power import PowerTrace
from repro.traces.variables import bool_in, int_in


def synthetic_trace(n, seed, name="synthetic"):
    """A control-heavy trace exercising bool, const and compare atoms."""
    rng = np.random.default_rng(seed)
    specs = [
        bool_in("en"),
        int_in("mode", 4),
        int_in("cnt", 4),
        int_in("lvl", 4),
    ]
    en = np.repeat(rng.integers(0, 2, n // 5 + 1), 5)[:n]
    mode = np.repeat(rng.integers(0, 3, n // 9 + 1), 9)[:n]
    cnt = rng.integers(0, 12, n)
    lvl = rng.integers(0, 12, n)
    return FunctionalTrace.from_arrays(
        specs,
        {"en": en, "mode": mode, "cnt": cnt, "lvl": lvl},
        name=name,
    )


def synthetic_power(trace, seed=0):
    """A power trace loosely tracking the trace's ``mode`` column."""
    rng = np.random.default_rng(seed)
    base = trace.column("mode").astype(np.float64) * 2.0 + 1.0
    return PowerTrace(base + rng.random(len(trace)) * 0.1)


def bundle_bytes(psms, variables):
    """Digest-comparable bundle bytes (no stage reports, as the CLI)."""
    return json.dumps(
        psms_to_json(psms, variables=variables), indent=2
    ).encode("utf-8")


class TestRunLengthStitcher:
    @pytest.mark.parametrize("window", [1, 3, 7, 100])
    def test_matches_batch_rle(self, window):
        rng = np.random.default_rng(11)
        values = np.repeat(rng.integers(0, 4, 40), rng.integers(1, 6, 40))
        stitcher = RunLengthStitcher()
        for start in range(0, len(values), window):
            stitcher.extend(values[start : start + window])
        starts, lengths, codes = stitcher.rle()
        b_starts, b_lengths, b_codes = run_length_encode(values)
        assert np.array_equal(starts, b_starts)
        assert np.array_equal(lengths, b_lengths)
        assert np.array_equal(codes, b_codes)
        assert np.array_equal(stitcher.indices(), values.astype(np.int32))
        assert len(stitcher) == len(values)

    def test_boundary_run_is_stitched_not_split(self):
        stitcher = RunLengthStitcher()
        stitcher.extend(np.array([5, 5, 5]))
        stitcher.extend(np.array([5, 5, 2]))
        starts, lengths, codes = stitcher.rle()
        assert codes.tolist() == [5, 2]
        assert lengths.tolist() == [5, 1]
        assert starts.tolist() == [0, 5]

    def test_empty_window_is_noop(self):
        stitcher = RunLengthStitcher()
        stitcher.extend(np.array([1, 1]))
        stitcher.extend(np.array([], dtype=np.int64))
        stitcher.extend(np.array([1, 2]))
        _, lengths, codes = stitcher.rle()
        assert codes.tolist() == [1, 2]
        assert lengths.tolist() == [3, 1]

    def test_never_extended(self):
        stitcher = RunLengthStitcher()
        starts, lengths, codes = stitcher.rle()
        assert len(starts) == len(lengths) == len(codes) == 0
        assert stitcher.runs == 0
        assert len(stitcher.indices()) == 0


class TestWindowSources:
    def test_memory_source_replays_whole_trace(self):
        trace = synthetic_trace(53, seed=3)
        power = synthetic_power(trace)
        source = MemoryWindowSource(trace, power, trace_id=2)
        seen = 0
        for window in source.windows(10):
            assert window.trace_id == 2
            assert window.start == seen
            assert len(window.functional) == len(window.power)
            seen += len(window)
        assert seen == len(trace)
        assert len(source) == len(trace)

    def test_memory_source_length_mismatch_rejected(self):
        trace = synthetic_trace(10, seed=3)
        with pytest.raises(ValueError):
            MemoryWindowSource(trace, PowerTrace([1.0]))

    def test_reader_source_round_trip(self, tmp_path):
        trace = synthetic_trace(41, seed=5)
        power = synthetic_power(trace)
        path = tmp_path / "pair.npt"
        save_training_bin(trace, power, path)
        source = ReaderWindowSource(BinaryTraceReader(path), trace_id=0)
        total = sum(len(w) for w in source.windows(16))
        assert total == len(trace)
        assert len(source.functional()) == len(trace)
        assert np.allclose(source.power().values, power.values)

    def test_as_window_source_coercions(self, tmp_path):
        trace = synthetic_trace(20, seed=7)
        power = synthetic_power(trace)
        path = tmp_path / "pair.npt"
        save_training_bin(trace, power, path)
        assert isinstance(
            as_window_source((trace, power), 0), MemoryWindowSource
        )
        assert isinstance(as_window_source(path, 1), ReaderWindowSource)
        source = MemoryWindowSource(trace, power, 0)
        assert as_window_source(source, 3) is source
        assert source.trace_id == 3
        with pytest.raises(TypeError):
            as_window_source(42, 0)


class TestOperatorMerge:
    """merge() over disjoint trace partitions equals one-pass operators."""

    def _windows(self, trace, power, trace_id, size=13):
        return list(
            MemoryWindowSource(trace, power, trace_id).windows(size)
        )

    def test_atom_discovery_merge(self):
        config = MinerConfig()
        t0, t1 = synthetic_trace(80, 1), synthetic_trace(60, 2)
        single = AtomDiscovery(config)
        for win in self._windows(t0, synthetic_power(t0), 0):
            single.fit_window(win)
        for win in self._windows(t1, synthetic_power(t1), 1):
            single.fit_window(win)

        left, right = AtomDiscovery(config), AtomDiscovery(config)
        for win in self._windows(t0, synthetic_power(t0), 0):
            left.fit_window(win)
        for win in self._windows(t1, synthetic_power(t1), 1):
            right.fit_window(win)
        merged = left.merge(right)
        assert [str(a) for a in merged.finalize()] == [
            str(a) for a in single.finalize()
        ]

    def test_atom_stats_merge(self):
        config = MinerConfig()
        t0, t1 = synthetic_trace(90, 3), synthetic_trace(70, 4)
        atoms = AssertionMiner(config)._candidate_atoms([t0, t1])

        single = AtomStats(atoms, config)
        for win in self._windows(t0, synthetic_power(t0), 0):
            single.fit_window(win)
        for win in self._windows(t1, synthetic_power(t1), 1):
            single.fit_window(win)

        left, right = AtomStats(atoms, config), AtomStats(atoms, config)
        for win in self._windows(t0, synthetic_power(t0), 0):
            left.fit_window(win)
        for win in self._windows(t1, synthetic_power(t1), 1):
            right.fit_window(win)
        merged = left.merge(right)
        kept_single = [str(a) for a in single.finalize()]
        assert [str(a) for a in merged.finalize()] == kept_single
        assert merged.total == single.total
        assert np.array_equal(merged.holds, single.holds)
        assert np.array_equal(merged.total_runs, single.total_runs)
        assert np.array_equal(merged.chatter, single.chatter)

    def test_minterm_stream_merge_remaps_universe(self):
        config = MinerConfig()
        t0, t1 = synthetic_trace(90, 3), synthetic_trace(70, 4)
        batch = AssertionMiner(config).mine_many([t0, t1])
        atoms = batch.atoms

        left, right = MintermStream(atoms), MintermStream(atoms)
        for win in self._windows(t0, synthetic_power(t0), 0):
            left.fit_window(win)
        for win in self._windows(t1, synthetic_power(t1), 1):
            right.fit_window(win)
        merged = left.merge(right).finalize()
        assert [str(p) for p in merged.propositions] == [
            str(p) for p in batch.propositions
        ]
        for got, want in zip(merged.traces, batch.traces):
            assert np.array_equal(got.indices, want.indices)

    def test_minterm_stream_rejects_overlapping_traces(self):
        atoms = AssertionMiner(MinerConfig())._candidate_atoms(
            [synthetic_trace(30, 1)]
        )
        trace = synthetic_trace(30, 1)
        left, right = MintermStream(atoms), MintermStream(atoms)
        for win in self._windows(trace, synthetic_power(trace), 0):
            left.fit_window(win)
            right.fit_window(win)
        with pytest.raises(Exception):
            left.merge(right)


class TestStreamingMinerEquivalence:
    @pytest.mark.parametrize("window", [1, 17, 64, 10_000])
    def test_matches_batch_mine_many(self, window):
        config = MinerConfig()
        traces = [synthetic_trace(257, 1), synthetic_trace(123, 2)]
        batch = AssertionMiner(config).mine_many(traces)

        sources = [
            MemoryWindowSource(t, synthetic_power(t), i)
            for i, t in enumerate(traces)
        ]
        report = StreamingMiner(config, window=window).mine_sources(sources)
        stream = report.mining

        assert [str(a) for a in stream.atoms] == [
            str(a) for a in batch.atoms
        ]
        assert [str(p) for p in stream.propositions] == [
            str(p) for p in batch.propositions
        ]
        for got, want in zip(stream.traces, batch.traces):
            assert got.trace_id == want.trace_id
            assert np.array_equal(got.indices, want.indices)
        for got, want in zip(stream.matrices, batch.matrices):
            assert got.shape == want.shape
            assert np.array_equal(got, want)
        assert set(stream.labeler._universe) == set(batch.labeler._universe)
        assert report.windows == sum(
            -(-len(t) // window) for t in traces
        )

    def test_rejects_incompatible_sources(self):
        t0 = synthetic_trace(20, 1)
        t1 = FunctionalTrace([bool_in("other")], {"other": [0, 1]})
        sources = [
            MemoryWindowSource(t0, synthetic_power(t0), 0),
            MemoryWindowSource(t1, PowerTrace([1.0, 2.0]), 1),
        ]
        with pytest.raises(ValueError):
            StreamingMiner(MinerConfig()).mine_sources(sources)

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            StreamingMiner(MinerConfig()).mine_sources([])
        with pytest.raises(ValueError):
            StreamingMiner(MinerConfig(), window=0)


class TestFitStream:
    def test_digest_equal_to_batch_fit(self):
        traces = [synthetic_trace(257, 1), synthetic_trace(123, 2)]
        powers = [synthetic_power(t, seed=9) for t in traces]
        variables = traces[0].variables

        reset_state_ids()
        batch = PsmFlow(FlowConfig()).fit(traces, powers)
        batch_digest = bundle_digest(bundle_bytes(batch.psms, variables))

        reset_state_ids()
        stream = PsmFlow(FlowConfig()).fit_stream(
            [
                MemoryWindowSource(t, p, i)
                for i, (t, p) in enumerate(zip(traces, powers))
            ],
            window=50,
        )
        stream_digest = bundle_digest(bundle_bytes(stream.psms, variables))
        assert stream_digest == batch_digest
        mine_report = stream.report.stage("mine")
        assert mine_report is not None
        assert mine_report.counters["windows"] == 6 + 3

    def test_digest_equal_on_benchmark_ip(self):
        from repro.power.estimator import run_power_simulation
        from repro.testbench import BENCHMARKS

        spec = BENCHMARKS["RAM"]
        ref = run_power_simulation(spec.module_class(), spec.short_ts())
        variables = ref.trace.variables

        reset_state_ids()
        batch = PsmFlow(spec.flow_config()).fit([ref.trace], [ref.power])
        batch_digest = bundle_digest(bundle_bytes(batch.psms, variables))

        reset_state_ids()
        stream = PsmFlow(spec.flow_config()).fit_stream(
            [(ref.trace, ref.power)], window=97
        )
        stream_digest = bundle_digest(bundle_bytes(stream.psms, variables))
        assert stream_digest == batch_digest

    def test_accepts_npt_paths(self, tmp_path):
        trace = synthetic_trace(150, 5)
        power = synthetic_power(trace)
        path = tmp_path / "pair.npt"
        save_training_bin(trace, power, path)

        reset_state_ids()
        batch = PsmFlow(FlowConfig()).fit([trace], [power])
        reset_state_ids()
        stream = PsmFlow(FlowConfig()).fit_stream([path], window=31)
        assert bundle_bytes(
            stream.psms, trace.variables
        ) == bundle_bytes(batch.psms, trace.variables)

    def test_final_publish_through_publisher(self, tmp_path):
        trace = synthetic_trace(120, 6)
        power = synthetic_power(trace)
        target = tmp_path / "model.json"
        publisher = BundlePublisher(target, variables=trace.variables)
        flow = PsmFlow(FlowConfig()).fit_stream(
            [(trace, power)], window=40, publisher=publisher
        )
        assert target.exists()
        assert publisher.versions[-1][1] == "final"
        bundle = load_bundle(target)
        assert bundle.digest == publisher.digest
        assert len(bundle.psms) == len(flow.psms)

    def test_progress_callback_sees_every_window(self):
        trace = synthetic_trace(100, 7)
        seen = []
        PsmFlow(FlowConfig()).fit_stream(
            [(trace, synthetic_power(trace))],
            window=30,
            progress=seen.append,
        )
        assert [s.index for s in seen] == [0, 1, 2, 3]
        assert all(isinstance(s, WindowSummary) for s in seen)
        assert seen[-1].instants == 10  # final partial window

    def test_checkpoint_resume_crosses_paths(self, tmp_path):
        """A stream run's mine checkpoint resumes under the batch runner."""
        trace = synthetic_trace(140, 8)
        power = synthetic_power(trace)

        reset_state_ids()
        stream = PsmFlow(FlowConfig()).fit_stream(
            [(trace, power)], window=33, checkpoint_dir=tmp_path
        )
        stream_bytes = bundle_bytes(stream.psms, trace.variables)

        reset_state_ids()
        resumed = PsmFlow(FlowConfig()).fit(
            [trace], [power], checkpoint_dir=tmp_path, skip_to="generate"
        )
        assert bundle_bytes(
            resumed.psms, trace.variables
        ) == stream_bytes
        mine_report = resumed.report.stage("mine")
        assert mine_report.status == "resumed"


def drifting_pair(n=400, switch=200):
    """A trace whose behaviour and power level change at ``switch``."""
    specs = [bool_in("en"), int_in("mode", 4)]
    en = np.ones(n, dtype=np.int64)
    mode = np.where(np.arange(n) < switch, 1, 6)
    trace = FunctionalTrace.from_arrays(specs, {"en": en, "mode": mode})
    power = np.where(np.arange(n) < switch, 1.0, 9.0) + np.tile(
        [0.0, 0.01], n // 2
    )
    return trace, PowerTrace(power)


class TestDriftDetection:
    def test_new_proposition_drift_fires(self):
        trace, power = drifting_pair()
        drift = DriftDetector(DriftPolicy(max_new_fraction=0.5))
        StreamingMiner(
            MinerConfig(), window=50, drift=drift
        ).mine_sources([MemoryWindowSource(trace, power, 0)])
        assert drift.events
        event = drift.events[0]
        assert event.reason == "new_propositions"
        assert event.start == 200  # the behaviour switch window

    def test_mean_shift_drift_fires(self):
        trace, power = drifting_pair()
        drift = DriftDetector(DriftPolicy(mean_shift_sigmas=3.0))
        StreamingMiner(
            MinerConfig(), window=50, drift=drift
        ).mine_sources([MemoryWindowSource(trace, power, 0)])
        assert any(e.reason == "mean_shift" for e in drift.events)

    def test_warmup_suppresses_initial_windows(self):
        trace, power = drifting_pair()
        drift = DriftDetector(
            DriftPolicy(max_new_fraction=0.0001, warmup_windows=100)
        )
        StreamingMiner(
            MinerConfig(), window=50, drift=drift
        ).mine_sources([MemoryWindowSource(trace, power, 0)])
        assert drift.events == []

    def test_disabled_policy_never_fires(self):
        trace, power = drifting_pair()
        drift = DriftDetector(DriftPolicy())
        StreamingMiner(
            MinerConfig(), window=50, drift=drift
        ).mine_sources([MemoryWindowSource(trace, power, 0)])
        assert drift.events == []

    def test_drift_refresh_publishes_versions(self, tmp_path):
        """Mid-stream refresh + final publish: versioned, all loadable."""
        trace, power = drifting_pair()
        target = tmp_path / "model.json"
        publisher = BundlePublisher(target, variables=trace.variables)
        drift = DriftDetector(DriftPolicy(max_new_fraction=0.5))

        digests_seen = []
        original_publish = publisher.publish

        def tracking_publish(psms, reason="refresh"):
            digest = original_publish(psms, reason)
            loaded = load_bundle(target)  # every version is complete
            assert loaded.digest == digest
            digests_seen.append(digest)
            return digest

        publisher.publish = tracking_publish
        flow = PsmFlow(FlowConfig()).fit_stream(
            [(trace, power)],
            window=50,
            drift=drift,
            publisher=publisher,
        )
        assert len(publisher.versions) >= 2
        assert publisher.versions[0][1] == "drift"
        assert publisher.versions[-1][1] == "final"
        assert len(set(digests_seen)) >= 2  # the model actually changed
        mine_report = flow.report.stage("mine")
        assert mine_report.counters["drift_events"] >= 1
        assert mine_report.counters["refreshes"] >= 1


class TestStreamingStages:
    def test_build_streaming_stages_swaps_mining(self):
        stages = build_streaming_stages(
            ("mine", "generate", "simplify", "join", "refine", "hmm"),
            window=64,
        )
        assert isinstance(stages[0], StreamMiningStage)
        assert stages[0].window == 64
        assert [s.name for s in stages] == [
            "mine", "generate", "simplify", "join", "refine", "hmm",
        ]

    def test_unknown_stage_rejected(self):
        with pytest.raises(Exception):
            build_streaming_stages(("mine", "nope"))

    def test_window_validated(self):
        with pytest.raises(Exception):
            StreamMiningStage(window=0)


class TestPublisher:
    def test_atomic_replace_keeps_single_file(self, tmp_path):
        trace = synthetic_trace(60, 9)
        power = synthetic_power(trace)
        reset_state_ids()
        flow = PsmFlow(FlowConfig()).fit([trace], [power])
        target = tmp_path / "model.json"
        publisher = BundlePublisher(target, variables=trace.variables)
        first = publisher.publish(flow.psms)
        second = publisher.publish(flow.psms)
        assert first == second  # same model, same bytes, same digest
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]
        assert load_bundle(target).digest == first
