"""Tests for the dynamic assertion miner (paper Sec. III-A)."""

import numpy as np
import pytest

from repro.core.mining import (
    AssertionMiner,
    MinerConfig,
    proposition_label,
)
from repro.core.propositions import VarCompare, VarEqualsConst
from repro.traces.functional import FunctionalTrace
from repro.traces.variables import bool_in, int_in, int_out


def make_trace(columns, specs=None, name="t"):
    if specs is None:
        specs = [bool_in("en"), int_in("a", 4), int_in("b", 4)]
    return FunctionalTrace(specs, columns, name=name)


class TestLabels:
    def test_alphabetic_then_base26(self):
        assert proposition_label(0) == "p_a"
        assert proposition_label(25) == "p_z"
        # Past p_z the labels continue in bijective base-26, never numeric.
        assert proposition_label(26) == "p_aa"
        assert proposition_label(27) == "p_ab"
        assert proposition_label(26 + 25) == "p_az"
        assert proposition_label(26 + 26) == "p_ba"
        assert proposition_label(26 + 26 * 26 - 1) == "p_zz"
        assert proposition_label(26 + 26 * 26) == "p_aaa"

    def test_labels_are_unique(self):
        labels = [proposition_label(i) for i in range(2000)]
        assert len(set(labels)) == len(labels)


class TestFig3WorkedExample:
    """The paper's Fig. 3: proposition extraction on the example trace."""

    def test_proposition_trace_matches_paper(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        labels = [p.label for p in result.proposition_trace]
        # p_a holds on [0,2], p_b on [3,5], p_c at 6 and p_d at 7.
        assert labels == ["p_a"] * 3 + ["p_b"] * 3 + ["p_c", "p_d"]

    def test_p_a_formula_matches_paper(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        p_a = result.propositions[0]
        # paper: p_a = v1=true & v2=false & v3>v4
        assert VarEqualsConst("v1", 1) in p_a.positives
        assert VarCompare("v3", ">", "v4") in p_a.positives
        assert VarEqualsConst("v2", 1) in p_a.negatives

    def test_exactly_one_proposition_per_instant(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        for i in range(len(fig3_trace)):
            holding = [
                p
                for p in result.propositions
                if p.evaluate(fig3_trace.at(i))
            ]
            assert holding == [result.proposition_trace[i]]

    def test_matrix_shape(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        assert result.matrix.shape == (8, len(result.atoms))


class TestAtomCandidates:
    def test_bool_atoms_mined(self):
        trace = make_trace(
            {"en": [0] * 6 + [1] * 6, "a": [0] * 12, "b": [0] * 12}
        )
        result = AssertionMiner(MinerConfig(min_avg_run=1.0)).mine(trace)
        assert VarEqualsConst("en", 1) in result.atoms

    def test_const_atoms_for_small_domains(self):
        trace = make_trace(
            {"en": [0] * 6, "a": [2, 2, 2, 7, 7, 7], "b": [0] * 6}
        )
        result = AssertionMiner(MinerConfig(min_avg_run=1.0)).mine(trace)
        assert VarEqualsConst("a", 2) in result.atoms
        assert VarEqualsConst("a", 7) in result.atoms

    def test_const_atoms_skipped_for_large_domains(self):
        trace = make_trace(
            {
                "en": [0] * 8,
                "a": [0, 1, 2, 3, 4, 5, 6, 7],
                "b": [0] * 8,
            }
        )
        config = MinerConfig(min_avg_run=1.0, max_distinct_for_const=4)
        result = AssertionMiner(config).mine(trace)
        assert not any(
            isinstance(x, VarEqualsConst) and x.var == "a"
            for x in result.atoms
        )

    def test_const_atoms_skipped_for_wide_variables(self):
        specs = [int_in("key", 128)]
        trace = FunctionalTrace(specs, {"key": [5, 5, 9, 9]})
        config = MinerConfig(min_avg_run=1.0, max_const_width=16)
        result = AssertionMiner(config).mine(trace)
        assert result.atoms == []

    def test_comparisons_between_same_width(self):
        trace = make_trace(
            {"en": [0] * 20, "a": [1] * 10 + [5] * 10, "b": [3] * 20},
        )
        config = MinerConfig(min_avg_run=1.0, max_distinct_for_const=0)
        result = AssertionMiner(config).mine(trace)
        assert VarCompare("a", ">", "b") in result.atoms
        assert VarCompare("a", "==", "b") in result.atoms

    def test_comparisons_skipped_above_width_limit(self):
        specs = [int_in("x", 128), int_in("y", 128)]
        trace = FunctionalTrace(specs, {"x": [1, 2], "y": [3, 4]})
        config = MinerConfig(min_avg_run=1.0, max_compare_width=64)
        result = AssertionMiner(config).mine(trace)
        assert result.atoms == []

    def test_extra_atoms_injected(self):
        atom = VarCompare("a", ">=", "b")
        trace = make_trace({"en": [0] * 4, "a": [1] * 4, "b": [0] * 4})
        config = MinerConfig(min_avg_run=1.0, extra_atoms=(atom,))
        result = AssertionMiner(config).mine(trace)
        assert atom in result.atoms


class TestStabilityFilters:
    def test_chattering_atom_dropped(self):
        # en flips every cycle -> average run length 1
        trace = make_trace(
            {"en": [0, 1] * 10, "a": [0] * 20, "b": [0] * 20}
        )
        config = MinerConfig(min_avg_run=3.0)
        result = AssertionMiner(config).mine(trace)
        assert VarEqualsConst("en", 1) not in result.atoms

    def test_stable_atom_kept(self):
        trace = make_trace(
            {"en": [0] * 10 + [1] * 10, "a": [0] * 20, "b": [0] * 20}
        )
        config = MinerConfig(min_avg_run=3.0)
        result = AssertionMiner(config).mine(trace)
        assert VarEqualsConst("en", 1) in result.atoms

    def test_chatter_fraction_filter(self):
        # long stable prefix inflates the average run length, but half
        # the trace chatters: the local-stability filter must drop it.
        signal = [0] * 60 + [0, 1] * 30
        trace = make_trace(
            {"en": signal, "a": [0] * 120, "b": [0] * 120}
        )
        config = MinerConfig(
            min_avg_run=2.0, min_stable_run=3, max_chatter_fraction=0.25
        )
        result = AssertionMiner(config).mine(trace)
        assert VarEqualsConst("en", 1) not in result.atoms

    def test_single_cycle_pulses_survive_chatter_filter(self):
        # a control pulse once every 16 cycles covers few instants
        signal = ([1] + [0] * 15) * 8
        trace = make_trace(
            {"en": signal, "a": [0] * 128, "b": [0] * 128}
        )
        config = MinerConfig(
            min_avg_run=2.0, min_stable_run=3, max_chatter_fraction=0.25
        )
        result = AssertionMiner(config).mine(trace)
        assert VarEqualsConst("en", 1) in result.atoms

    def test_constant_atom_kept(self):
        trace = make_trace({"en": [1] * 10, "a": [0] * 10, "b": [0] * 10})
        result = AssertionMiner(MinerConfig(min_avg_run=3.0)).mine(trace)
        assert VarEqualsConst("en", 1) in result.atoms

    def test_min_support_filter(self):
        signal = [1] * 1 + [0] * 99
        trace = make_trace(
            {"en": signal, "a": [0] * 100, "b": [0] * 100}
        )
        config = MinerConfig(min_avg_run=1.0, min_support=0.05)
        result = AssertionMiner(config).mine(trace)
        assert VarEqualsConst("en", 1) not in result.atoms


class TestComposition:
    def test_one_and_only_one_proposition_holds(self):
        rng = np.random.default_rng(0)
        trace = make_trace(
            {
                "en": rng.integers(0, 2, 64).tolist(),
                "a": rng.integers(0, 4, 64).tolist(),
                "b": rng.integers(0, 4, 64).tolist(),
            }
        )
        result = AssertionMiner(
            MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0)
        ).mine(trace)
        for i in range(len(trace)):
            holding = [
                p for p in result.propositions if p.evaluate(trace.at(i))
            ]
            assert len(holding) == 1

    def test_labels_in_first_seen_order(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        assert [p.label for p in result.propositions] == [
            "p_a",
            "p_b",
            "p_c",
            "p_d",
        ]


class TestMineMany:
    def test_shared_universe_across_traces(self):
        t1 = make_trace({"en": [0] * 4, "a": [0] * 4, "b": [0] * 4})
        t2 = make_trace({"en": [0] * 4, "a": [0] * 4, "b": [0] * 4})
        result = AssertionMiner(MinerConfig(min_avg_run=1.0)).mine_many(
            [t1, t2]
        )
        assert result.traces[0][0] is result.traces[1][0]
        assert result.traces[0].trace_id == 0
        assert result.traces[1].trace_id == 1

    def test_incompatible_traces_rejected(self):
        t1 = make_trace({"en": [0], "a": [0], "b": [0]})
        t2 = FunctionalTrace([bool_in("x")], {"x": [0]})
        with pytest.raises(ValueError):
            AssertionMiner().mine_many([t1, t2])

    def test_empty_trace_rejected(self):
        t1 = make_trace({"en": [], "a": [], "b": []})
        with pytest.raises(ValueError):
            AssertionMiner().mine(t1)

    def test_no_traces_rejected(self):
        with pytest.raises(ValueError):
            AssertionMiner().mine_many([])

    def test_single_trace_accessors_guarded(self):
        t1 = make_trace({"en": [0], "a": [0], "b": [0]})
        t2 = make_trace({"en": [1], "a": [0], "b": [0]})
        result = AssertionMiner(MinerConfig(min_avg_run=1.0)).mine_many(
            [t1, t2]
        )
        with pytest.raises(ValueError):
            result.proposition_trace
        with pytest.raises(ValueError):
            result.matrix


class TestLabeler:
    def test_label_matches_mining(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        labels = result.labeler.label(fig3_trace)
        assert labels == list(result.proposition_trace)

    def test_unknown_row_labels_none(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        unseen = FunctionalTrace(
            fig3_trace.variables,
            {"v1": [0], "v2": [0], "v3": [0], "v4": [1]},
        )
        # v1=false & v2=false & v3<v4 was never seen in training
        assert result.labeler.label(unseen) == [None]

    def test_label_assignment_matches_batch(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        for i in range(len(fig3_trace)):
            assert result.labeler.label_assignment(
                fig3_trace.at(i)
            ) is result.labeler.label(fig3_trace)[i]

    def test_label_assignment_cache_consistent(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        row = fig3_trace.at(0)
        first = result.labeler.label_assignment(row)
        second = result.labeler.label_assignment(row)  # cached path
        assert first is second

    def test_empty_alphabet_labels_single_proposition(self):
        trace = make_trace({"en": [0, 1], "a": [0, 0], "b": [0, 0]})
        config = MinerConfig(
            include_bool_atoms=False,
            include_comparisons=False,
            max_distinct_for_const=0,
        )
        result = AssertionMiner(config).mine(trace)
        assert len(result.propositions) == 1
        labels = result.labeler.label(trace)
        assert labels[0] is labels[1] is result.propositions[0]

    def test_label_segments_covers_trace(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        runs = result.labeler.label_segments(fig3_trace)
        assert runs.n == len(fig3_trace)
        # Fig. 3: p_a x3, p_b x3, p_c, p_d
        assert runs.lengths.tolist() == [3, 3, 1, 1]
        assert [p.label for p in runs.props] == ["p_a", "p_b", "p_c", "p_d"]
        assert runs.unknown_instants == 0
        # per-instant views agree with the batch labelling
        assert runs.instant_props() == result.labeler.label(fig3_trace)
        assert runs.run_ends().tolist() == [3, 3, 3, 6, 6, 6, 7, 8]

    def test_label_segments_marks_unknown_runs(self, fig3_trace, fig3_miner):
        result = fig3_miner.mine(fig3_trace)
        unseen = FunctionalTrace(
            fig3_trace.variables,
            {
                "v1": [0, 0, 1],
                "v2": [0, 0, 0],
                "v3": [0, 0, 3],
                "v4": [1, 1, 1],
            },
        )
        runs = result.labeler.label_segments(unseen)
        assert runs.unknown_instants == 2
        assert runs.props[0] is None


class TestLabelerStats:
    def test_counters_start_at_zero(self, fig3_trace, fig3_miner):
        labeler = fig3_miner.mine(fig3_trace).labeler
        stats = labeler.stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "enabled": True,
        }

    def test_hits_and_misses_counted(self, fig3_trace, fig3_miner):
        labeler = fig3_miner.mine(fig3_trace).labeler
        row = fig3_trace.at(0)
        labeler.label_assignment(row)
        labeler.label_assignment(row)
        labeler.label_assignment(fig3_trace.at(3))
        stats = labeler.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2

    def test_counters_survive_eviction(self, fig3_trace, fig3_miner):
        labeler = fig3_miner.mine(fig3_trace).labeler
        labeler.label_assignment(fig3_trace.at(0))
        before = labeler.stats()
        # Overflow the bounded memo so the next insert evicts it.
        labeler._assignment_cache.update(
            {("synthetic", i): None for i in range(70000)}
        )
        labeler.label_assignment(fig3_trace.at(3))
        stats = labeler.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == before["hits"]
        assert stats["misses"] == before["misses"] + 1
        # the memo itself restarted small
        assert len(labeler._assignment_cache) == 1
