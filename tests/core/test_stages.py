"""Tests for the staged pipeline subsystem (``repro.core.stages``)."""

import numpy as np
import pytest

from repro.core.export import load_stage_reports, psms_to_json, save_psms
from repro.core.mergeability import MergePolicy
from repro.core.mining import AssertionMiner, MinerConfig
from repro.core.pipeline import FlowConfig, PsmFlow
from repro.core.psm import ConstantPower, RegressionPower, reset_state_ids
from repro.core.stages import (
    MINING,
    STAGE_ORDER,
    ArtifactStore,
    CheckpointError,
    MiningStage,
    MissingArtifactError,
    PipelineError,
    PipelineRunner,
    StageReport,
    build_stages,
    mining_from_json,
    mining_to_json,
    stage_reports_from_json,
)
from repro.traces.functional import FunctionalTrace
from repro.traces.power import PowerTrace
from repro.traces.variables import int_in


def world(pattern, seed=0):
    values = []
    for mode, count in pattern:
        values.extend([mode] * count)
    trace = FunctionalTrace([int_in("x", 2)], {"x": values})
    levels = {0: 1.0, 1: 5.0, 2: 2.0}
    rng = np.random.default_rng(seed)
    power = PowerTrace(
        [levels[v] * (1 + rng.normal(0, 0.002)) for v in values]
    )
    return trace, power


def data_world(blocks=8, seed=0):
    """Idle/active alternation where active power is linear in HD."""
    rng = np.random.default_rng(seed)
    mode, data = [], []
    for _ in range(blocks):
        mode.extend([0] * 6)
        data.extend([0] * 6)
        mode.extend([1] * 20)
        data.extend(int(v) for v in rng.integers(0, 256, 20))
    trace = FunctionalTrace(
        [int_in("mode", 1), int_in("data", 8)],
        {"mode": mode, "data": data},
    )
    hd = trace.hamming_distances()
    power = PowerTrace(
        [
            1.0 if m == 0 else 2.0 + 1.0 * float(h)
            for m, h in zip(mode, hd)
        ]
    )
    return trace, power


def config(**overrides):
    base = dict(
        miner=MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0),
        merge=MergePolicy(max_cv=None),
    )
    base.update(overrides)
    return FlowConfig(**base)


def model_json(flow):
    """Canonical serialised form of a fitted flow's PSM set."""
    return psms_to_json(flow.psms)


PATTERN = [(0, 5), (1, 5), (0, 5), (2, 5)] * 3 + [(0, 2)]


# ----------------------------------------------------------------------
# artifact store
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_put_get_roundtrip(self):
        store = ArtifactStore()
        store.put("psms", [])
        assert store.get("psms") == []
        assert store.has("psms")
        assert "psms" in store

    def test_missing_artifact_raises(self):
        store = ArtifactStore()
        with pytest.raises(MissingArtifactError):
            store.get("psms")

    def test_get_or_default(self):
        store = ArtifactStore()
        assert store.get_or("n_refined", 0) == 0
        store.put("n_refined", 3)
        assert store.get_or("n_refined", 0) == 3

    def test_known_key_type_checked(self):
        store = ArtifactStore()
        with pytest.raises(TypeError):
            store.put("psms", "not a list")
        with pytest.raises(TypeError):
            store.put(MINING, {"not": "a MiningResult"})

    def test_unknown_keys_allowed(self):
        store = ArtifactStore()
        store.put("extension_artifact", object())
        assert store.has("extension_artifact")

    def test_keys_in_publication_order(self):
        store = ArtifactStore()
        store.put("b", 1)
        store.put("a", 2)
        assert store.keys() == ["b", "a"]


# ----------------------------------------------------------------------
# stage reports
# ----------------------------------------------------------------------
class TestStageReport:
    def test_json_roundtrip(self):
        report = StageReport(
            "mine", wall_time=1.25, counters={"atoms": 4}
        )
        rebuilt = StageReport.from_json(report.to_json())
        assert rebuilt == report

    def test_resumed_marker_in_str(self):
        live = StageReport("join", wall_time=0.5)
        resumed = StageReport("mine", wall_time=0.1, status="resumed")
        assert "*" not in str(live)
        assert str(resumed).startswith("mine*")
        assert resumed.resumed and not live.resumed

    def test_list_roundtrip(self):
        reports = [StageReport("mine"), StageReport("hmm", wall_time=2.0)]
        payload = [r.to_json() for r in reports]
        assert stage_reports_from_json(payload) == reports


# ----------------------------------------------------------------------
# stage selection / runner validation
# ----------------------------------------------------------------------
class TestStageSelection:
    def test_default_selects_all_stages(self):
        assert FlowConfig().stage_names() == STAGE_ORDER

    def test_stages_subset_keeps_mandatory(self):
        names = FlowConfig(stages=("refine",)).stage_names()
        assert names == ("mine", "generate", "refine", "hmm")

    def test_stages_override_wins_over_flags(self):
        cfg = FlowConfig(stages=("join",), apply_simplify=True)
        assert "simplify" not in cfg.stage_names()

    def test_legacy_flags_still_work(self):
        cfg = FlowConfig(apply_simplify=False, apply_refine=False)
        assert cfg.stage_names() == ("mine", "generate", "join", "hmm")

    def test_unknown_stage_name_rejected(self):
        with pytest.raises(ValueError):
            FlowConfig(stages=("bogus",)).stage_names()

    def test_build_stages_unknown_name(self):
        with pytest.raises(PipelineError):
            build_stages(["mine", "bogus"])

    def test_runner_rejects_empty_pipeline(self):
        with pytest.raises(PipelineError):
            PipelineRunner([])

    def test_runner_rejects_duplicate_stages(self):
        with pytest.raises(PipelineError):
            PipelineRunner([MiningStage(), MiningStage()])


# ----------------------------------------------------------------------
# per-stage instrumentation
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_every_executed_stage_reports(self):
        trace, power = world(PATTERN)
        flow = PsmFlow(config()).fit([trace], [power])
        names = [r.name for r in flow.report.stages]
        assert tuple(names) == STAGE_ORDER
        for report in flow.report.stages:
            assert report.status == "executed"
            assert report.wall_time >= 0.0
            assert report.counters  # every stage counts something

    def test_stage_counters_match_summary(self):
        trace, power = world(PATTERN)
        flow = PsmFlow(config()).fit([trace], [power])
        mine = flow.report.stage("mine")
        assert mine.counters["atoms"] == flow.report.n_atoms
        assert mine.counters["propositions"] == flow.report.n_propositions
        generate = flow.report.stage("generate")
        assert generate.counters["states"] == flow.report.n_raw_states
        assert flow.report.stage("nonexistent") is None

    def test_stage_times_and_description(self):
        trace, power = world(PATTERN)
        flow = PsmFlow(config(stages=("simplify",))).fit([trace], [power])
        times = flow.report.stage_times()
        assert list(times) == ["mine", "generate", "simplify", "hmm"]
        assert all(t >= 0.0 for t in times.values())
        text = flow.report.describe_stages()
        for name in times:
            assert name in text

    def test_total_time_covers_stage_times(self):
        trace, power = world(PATTERN)
        flow = PsmFlow(config()).fit([trace], [power])
        assert flow.report.generation_time >= sum(
            flow.report.stage_times().values()
        ) * 0.5  # loose: total wall clock includes the stage wall times


# ----------------------------------------------------------------------
# omitting stages == the deprecated boolean flags, bit for bit
# ----------------------------------------------------------------------
class TestStageOmissionEquivalence:
    @pytest.mark.parametrize(
        "flags, stages",
        [
            (dict(apply_simplify=False), ("join", "refine")),
            (dict(apply_join=False), ("simplify", "refine")),
            (dict(apply_refine=False), ("simplify", "join")),
            (
                dict(
                    apply_simplify=False,
                    apply_join=False,
                    apply_refine=False,
                ),
                (),
            ),
        ],
    )
    def test_bit_for_bit(self, flags, stages):
        trace, power = world(PATTERN)
        reset_state_ids()
        legacy = PsmFlow(config(**flags)).fit([trace], [power])
        reset_state_ids()
        staged = PsmFlow(config(stages=stages)).fit([trace], [power])
        assert model_json(legacy) == model_json(staged)


# ----------------------------------------------------------------------
# checkpointing and resume
# ----------------------------------------------------------------------
class TestMiningCheckpoint:
    def test_roundtrip_is_value_identical(self):
        trace, _ = world(PATTERN)
        miner = AssertionMiner(
            MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0)
        )
        mining = miner.mine_many([trace])
        rebuilt = mining_from_json(mining_to_json(mining))
        assert rebuilt.atoms == mining.atoms
        assert rebuilt.propositions == mining.propositions
        assert len(rebuilt.traces) == len(mining.traces)
        for a, b in zip(rebuilt.traces, mining.traces):
            assert list(a) == list(b)
        for a, b in zip(rebuilt.matrices, mining.matrices):
            assert np.array_equal(a, b)
        assert rebuilt.labeler.atoms == mining.labeler.atoms

    def test_version_guard(self):
        trace, _ = world(PATTERN)
        miner = AssertionMiner(
            MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0)
        )
        payload = mining_to_json(miner.mine_many([trace]))
        payload["version"] = 99
        with pytest.raises(ValueError):
            mining_from_json(payload)


class TestCheckpointResume:
    def test_checkpoints_written_per_stage(self, tmp_path):
        trace, power = world(PATTERN)
        PsmFlow(config()).fit(
            [trace], [power], checkpoint_dir=tmp_path
        )
        for name in ("mine", "generate", "simplify", "join", "refine"):
            assert (tmp_path / f"{name}.json").exists()
        # the hmm stage is terminal and cheap: never checkpointed
        assert not (tmp_path / "hmm.json").exists()

    @pytest.mark.parametrize("skip_to", ["generate", "simplify", "hmm"])
    def test_resume_produces_identical_psm_set(self, tmp_path, skip_to):
        trace, power = world(PATTERN)
        reset_state_ids()
        full = PsmFlow(config()).fit(
            [trace], [power], checkpoint_dir=tmp_path
        )
        reset_state_ids()
        resumed = PsmFlow(config()).fit(
            [trace], [power], checkpoint_dir=tmp_path, skip_to=skip_to
        )
        assert model_json(full) == model_json(resumed)
        np.testing.assert_array_equal(
            full.estimate(trace).estimated.values,
            resumed.estimate(trace).estimated.values,
        )

    def test_resumed_stages_marked(self, tmp_path):
        trace, power = world(PATTERN)
        PsmFlow(config()).fit([trace], [power], checkpoint_dir=tmp_path)
        resumed = PsmFlow(config()).fit(
            [trace], [power], checkpoint_dir=tmp_path, skip_to="join"
        )
        status = {r.name: r.status for r in resumed.report.stages}
        assert status == {
            "mine": "resumed",
            "generate": "resumed",
            "simplify": "resumed",
            "join": "executed",
            "refine": "executed",
            "hmm": "executed",
        }

    def test_config_level_checkpointing(self, tmp_path):
        trace, power = world(PATTERN)
        cfg = config(checkpoint_dir=tmp_path)
        PsmFlow(cfg).fit([trace], [power])
        assert (tmp_path / "mine.json").exists()
        resumed = PsmFlow(
            config(checkpoint_dir=tmp_path, skip_to="generate")
        ).fit([trace], [power])
        assert resumed.report.stage("mine").resumed

    def test_skip_to_without_checkpoint_dir(self):
        trace, power = world([(0, 5), (1, 5)])
        with pytest.raises(CheckpointError):
            PsmFlow(config()).fit([trace], [power], skip_to="generate")

    def test_skip_to_missing_checkpoint(self, tmp_path):
        trace, power = world([(0, 5), (1, 5)])
        with pytest.raises(CheckpointError):
            PsmFlow(config()).fit(
                [trace], [power],
                checkpoint_dir=tmp_path / "empty",
                skip_to="generate",
            )

    def test_skip_to_unknown_stage(self, tmp_path):
        trace, power = world([(0, 5), (1, 5)])
        with pytest.raises(PipelineError):
            PsmFlow(config()).fit(
                [trace], [power],
                checkpoint_dir=tmp_path,
                skip_to="bogus",
            )

    def test_skip_to_stage_not_in_pipeline(self, tmp_path):
        trace, power = world([(0, 5), (1, 5)])
        with pytest.raises(PipelineError):
            PsmFlow(config(stages=("simplify",))).fit(
                [trace], [power],
                checkpoint_dir=tmp_path,
                skip_to="join",
            )

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        trace, power = world(PATTERN)
        PsmFlow(config()).fit([trace], [power], checkpoint_dir=tmp_path)
        (tmp_path / "mine.json").write_text("{not json")
        with pytest.raises(CheckpointError):
            PsmFlow(config()).fit(
                [trace], [power],
                checkpoint_dir=tmp_path,
                skip_to="generate",
            )


# ----------------------------------------------------------------------
# raw-PSM isolation (the working set is a structural deep copy)
# ----------------------------------------------------------------------
class TestRawPsmIsolation:
    def test_refinement_leaves_raw_set_constant(self):
        trace, power = data_world()
        flow = PsmFlow(config()).fit([trace], [power])
        # the active state's power is linear in HD: refinement must fire
        assert flow.report.n_refined_states > 0
        assert any(
            isinstance(s.power_model, RegressionPower)
            for psm in flow.psms
            for s in psm.states
        )
        # ...while every raw chain state keeps its constant mean output
        for psm in flow.raw_psms:
            for state in psm.states:
                assert isinstance(state.power_model, ConstantPower)
                assert state.power_model.value == state.attributes.mu

    def test_raw_and_working_share_no_mutable_objects(self):
        trace, power = world(PATTERN)
        flow = PsmFlow(config(stages=())).fit([trace], [power])
        raw = {id(s.attributes) for p in flow.raw_psms for s in p.states}
        work = {id(s.attributes) for p in flow.psms for s in p.states}
        assert not raw & work
        raw_models = {
            id(s.power_model) for p in flow.raw_psms for s in p.states
        }
        work_models = {
            id(s.power_model) for p in flow.psms for s in p.states
        }
        assert not raw_models & work_models


# ----------------------------------------------------------------------
# export of stage reports
# ----------------------------------------------------------------------
class TestStageReportExport:
    def test_saved_model_carries_stage_reports(self, tmp_path):
        trace, power = world(PATTERN)
        flow = PsmFlow(config()).fit([trace], [power])
        path = tmp_path / "model.json"
        save_psms(flow.psms, path, stage_reports=flow.report.stages)
        loaded = load_stage_reports(path)
        assert loaded == flow.report.stages

    def test_model_without_reports_loads_empty(self, tmp_path):
        trace, power = world(PATTERN)
        flow = PsmFlow(config()).fit([trace], [power])
        path = tmp_path / "model.json"
        save_psms(flow.psms, path)
        assert load_stage_reports(path) == []
