"""The paper's Fig. 2 PSM, built and simulated end to end.

Fig. 2 shows a three-state PSM (off 0mW / idle 15mW / active 100mW)
whose transitions are guarded by the ``on``, ``ready`` and ``start``
input conditions.  This test builds that machine by hand, drives it with
a functional trace of the device it describes, and checks that the
simulated power matches the state outputs.
"""

import numpy as np
import pytest

from repro.core.attributes import Interval, PowerAttributes
from repro.core.mining import PropositionLabeler
from repro.core.propositions import Proposition, VarEqualsConst
from repro.core.psm import PSM, PowerState, Transition
from repro.core.simulation import MultiPsmSimulator
from repro.core.temporal import UntilAssertion
from repro.traces.functional import FunctionalTrace
from repro.traces.variables import bool_in


ON = VarEqualsConst("on", 1, is_bool=True)
START = VarEqualsConst("start", 1, is_bool=True)


def propositions():
    """Minterms over {on, start}: off / idle / active."""
    p_off = Proposition("p_off", [], [ON, START])
    p_idle = Proposition("p_idle", [ON], [START])
    p_active = Proposition("p_active", [ON, START], [])
    return p_off, p_idle, p_active


def fig2_machine():
    p_off, p_idle, p_active = propositions()
    s_off = PowerState(
        assertion=UntilAssertion(p_off, p_idle),
        attributes=PowerAttributes(0.0001, 0.0, 10),
        intervals=[Interval(0, 0, 9)],
    )
    s_idle = PowerState(
        assertion=UntilAssertion(p_idle, p_active),
        attributes=PowerAttributes(15.0, 0.0, 10),
        intervals=[Interval(0, 10, 19)],
    )
    s_active = PowerState(
        assertion=UntilAssertion(p_active, p_off),
        attributes=PowerAttributes(100.0, 0.0, 10),
        intervals=[Interval(0, 20, 29)],
    )
    psm = PSM("fig2")
    psm.add_state(s_off, initial=True)
    psm.add_state(s_idle)
    psm.add_state(s_active)
    psm.add_transition(Transition(s_off.sid, s_idle.sid, p_idle))
    psm.add_transition(Transition(s_idle.sid, s_active.sid, p_active))
    psm.add_transition(Transition(s_active.sid, s_off.sid, p_off))
    return psm, (s_off, s_idle, s_active)


def labeler():
    p_off, p_idle, p_active = propositions()
    atoms = [ON, START]
    universe = {}
    for prop in (p_off, p_idle, p_active):
        row = np.array(
            [atom in prop.positives for atom in atoms], dtype=bool
        )
        universe[row.tobytes()] = prop
    return PropositionLabeler(atoms, universe)


class TestFig2:
    def test_power_follows_the_state_machine(self):
        psm, states = fig2_machine()
        simulator = MultiPsmSimulator([psm], labeler())
        # off x4, idle x4, active x4, off x3
        trace = FunctionalTrace(
            [bool_in("on"), bool_in("start")],
            {
                "on": [0] * 4 + [1] * 8 + [0] * 3,
                "start": [0] * 8 + [1] * 4 + [0] * 3,
            },
        )
        result = simulator.run(trace)
        expected = (
            [0.0001] * 4 + [15.0] * 4 + [100.0] * 4 + [0.0001] * 3
        )
        assert np.allclose(result.estimated.values, expected)
        assert result.desync_instants == 0

    def test_unknown_combination_desyncs(self):
        psm, states = fig2_machine()
        simulator = MultiPsmSimulator([psm], labeler())
        # start without on: a minterm (!on & start) absent from training
        trace = FunctionalTrace(
            [bool_in("on"), bool_in("start")],
            {"on": [0, 0, 0], "start": [0, 1, 1]},
        )
        result = simulator.run(trace)
        assert result.unknown_instants == 2

    def test_structure_matches_the_figure(self):
        psm, (s_off, s_idle, s_active) = fig2_machine()
        assert psm.is_deterministic()
        assert len(psm.transitions) == 3
        assert [t.dst for t in psm.successors(s_active.sid)] == [s_off.sid]
        assert [t.dst for t in psm.successors(s_off.sid)] == [s_idle.sid]
