"""Tests for power attributes and interval bookkeeping."""

import numpy as np
import pytest

from repro.core.attributes import Interval, PowerAttributes
from repro.traces.power import PowerTrace


class TestInterval:
    def test_length_inclusive(self):
        assert Interval(0, 3, 5).length == 3
        assert Interval(0, 2, 2).length == 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 5, 3)
        with pytest.raises(ValueError):
            Interval(0, -1, 2)

    def test_display(self):
        assert str(Interval(2, 0, 4)) == "T2[0,4]"


class TestPowerAttributes:
    def test_from_power_trace(self):
        power = PowerTrace([1.0, 2.0, 3.0, 10.0])
        attrs = PowerAttributes.from_power_trace(power, 0, 2)
        assert attrs.mu == pytest.approx(2.0)
        assert attrs.sigma == pytest.approx(np.std([1.0, 2.0, 3.0]))
        assert attrs.n == 3

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            PowerAttributes(1.0, 0.1, 0)
        with pytest.raises(ValueError):
            PowerAttributes(1.0, -0.1, 3)

    def test_variance(self):
        assert PowerAttributes(0.0, 2.0, 5).variance == pytest.approx(4.0)

    def test_pooled_matches_direct_computation(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        parts = [
            PowerAttributes(
                float(np.mean(values[:3])), float(np.std(values[:3])), 3
            ),
            PowerAttributes(
                float(np.mean(values[3:])), float(np.std(values[3:])), 4
            ),
        ]
        pooled = PowerAttributes.pooled(parts)
        assert pooled.mu == pytest.approx(float(np.mean(values)))
        assert pooled.sigma == pytest.approx(float(np.std(values)))
        assert pooled.n == 7

    def test_pooled_single_part_identity(self):
        attrs = PowerAttributes(2.5, 0.3, 10)
        pooled = PowerAttributes.pooled([attrs])
        assert pooled.mu == pytest.approx(attrs.mu)
        assert pooled.sigma == pytest.approx(attrs.sigma)
        assert pooled.n == attrs.n

    def test_pooled_empty_rejected(self):
        with pytest.raises(ValueError):
            PowerAttributes.pooled([])

    def test_from_intervals_equals_concatenated_samples(self):
        power = PowerTrace([1.0, 5.0, 2.0, 8.0, 3.0, 1.0])
        intervals = [Interval(0, 0, 1), Interval(0, 3, 5)]
        attrs = PowerAttributes.from_intervals(intervals, {0: power})
        samples = np.array([1.0, 5.0, 8.0, 3.0, 1.0])
        assert attrs.mu == pytest.approx(float(np.mean(samples)))
        assert attrs.sigma == pytest.approx(float(np.std(samples)))
        assert attrs.n == 5

    def test_from_intervals_multiple_traces(self):
        p0 = PowerTrace([1.0, 1.0])
        p1 = PowerTrace([3.0, 3.0])
        attrs = PowerAttributes.from_intervals(
            [Interval(0, 0, 1), Interval(1, 0, 1)], {0: p0, 1: p1}
        )
        assert attrs.mu == pytest.approx(2.0)
        assert attrs.sigma == pytest.approx(1.0)
