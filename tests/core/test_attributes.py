"""Tests for power attributes and interval bookkeeping."""

import numpy as np
import pytest

from repro.core.attributes import (
    Interval,
    PowerAttributes,
    RunningAttributes,
)
from repro.traces.power import PowerTrace


class TestInterval:
    def test_length_inclusive(self):
        assert Interval(0, 3, 5).length == 3
        assert Interval(0, 2, 2).length == 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 5, 3)
        with pytest.raises(ValueError):
            Interval(0, -1, 2)

    def test_display(self):
        assert str(Interval(2, 0, 4)) == "T2[0,4]"


class TestPowerAttributes:
    def test_from_power_trace(self):
        power = PowerTrace([1.0, 2.0, 3.0, 10.0])
        attrs = PowerAttributes.from_power_trace(power, 0, 2)
        assert attrs.mu == pytest.approx(2.0)
        assert attrs.sigma == pytest.approx(np.std([1.0, 2.0, 3.0]))
        assert attrs.n == 3

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            PowerAttributes(1.0, 0.1, 0)
        with pytest.raises(ValueError):
            PowerAttributes(1.0, -0.1, 3)

    def test_variance(self):
        assert PowerAttributes(0.0, 2.0, 5).variance == pytest.approx(4.0)

    def test_pooled_matches_direct_computation(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        parts = [
            PowerAttributes(
                float(np.mean(values[:3])), float(np.std(values[:3])), 3
            ),
            PowerAttributes(
                float(np.mean(values[3:])), float(np.std(values[3:])), 4
            ),
        ]
        pooled = PowerAttributes.pooled(parts)
        assert pooled.mu == pytest.approx(float(np.mean(values)))
        assert pooled.sigma == pytest.approx(float(np.std(values)))
        assert pooled.n == 7

    def test_pooled_single_part_identity(self):
        attrs = PowerAttributes(2.5, 0.3, 10)
        pooled = PowerAttributes.pooled([attrs])
        assert pooled.mu == pytest.approx(attrs.mu)
        assert pooled.sigma == pytest.approx(attrs.sigma)
        assert pooled.n == attrs.n

    def test_pooled_empty_rejected(self):
        with pytest.raises(ValueError):
            PowerAttributes.pooled([])

    def test_from_intervals_equals_concatenated_samples(self):
        power = PowerTrace([1.0, 5.0, 2.0, 8.0, 3.0, 1.0])
        intervals = [Interval(0, 0, 1), Interval(0, 3, 5)]
        attrs = PowerAttributes.from_intervals(intervals, {0: power})
        samples = np.array([1.0, 5.0, 8.0, 3.0, 1.0])
        assert attrs.mu == pytest.approx(float(np.mean(samples)))
        assert attrs.sigma == pytest.approx(float(np.std(samples)))
        assert attrs.n == 5

    def test_from_intervals_multiple_traces(self):
        p0 = PowerTrace([1.0, 1.0])
        p1 = PowerTrace([3.0, 3.0])
        attrs = PowerAttributes.from_intervals(
            [Interval(0, 0, 1), Interval(1, 0, 1)], {0: p0, 1: p1}
        )
        assert attrs.mu == pytest.approx(2.0)
        assert attrs.sigma == pytest.approx(1.0)


def random_splits(rng, samples, parts):
    """Partition ``samples`` into ``parts`` contiguous non-empty pieces."""
    cuts = np.sort(rng.choice(np.arange(1, len(samples)), parts - 1, False))
    return np.split(samples, cuts)


class TestMergeExactness:
    """merge()/RunningAttributes equal a single pass over concatenation."""

    def attrs_of(self, values):
        power = PowerTrace(values)
        return PowerAttributes.from_power_trace(power, 0, len(values) - 1)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("parts", [2, 3, 7])
    def test_pairwise_merge_matches_single_pass(self, seed, parts):
        rng = np.random.default_rng(seed)
        samples = rng.normal(10.0, 2.0, 200)
        pieces = random_splits(rng, samples, parts)
        merged = self.attrs_of(pieces[0])
        for piece in pieces[1:]:
            merged = merged.merge(self.attrs_of(piece))
        assert merged.n == len(samples)
        assert merged.mu == pytest.approx(float(np.mean(samples)), rel=1e-12)
        assert merged.sigma == pytest.approx(
            float(np.std(samples)), rel=1e-9, abs=1e-12
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_matches_pooled(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.normal(10.0, 1.0, 64)
        pieces = random_splits(rng, samples, 4)
        parts = [self.attrs_of(p) for p in pieces]
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        pooled = PowerAttributes.pooled(parts)
        assert merged.mu == pytest.approx(pooled.mu, rel=1e-12)
        assert merged.sigma == pytest.approx(pooled.sigma, rel=1e-9, abs=1e-12)

    def test_single_sample_parts(self):
        samples = np.array([3.0, 1.5, 4.0, 1.0, 5.0])
        merged = self.attrs_of(samples[:1])
        for value in samples[1:]:
            merged = merged.merge(PowerAttributes(float(value), 0.0, 1))
        assert merged.mu == pytest.approx(float(np.mean(samples)), rel=1e-12)
        assert merged.sigma == pytest.approx(float(np.std(samples)), rel=1e-12)

    def test_constant_segments_stay_exact(self):
        left = self.attrs_of(np.full(40, 7.5))
        right = self.attrs_of(np.full(60, 7.5))
        merged = left.merge(right)
        assert merged.mu == pytest.approx(7.5)
        assert merged.sigma == 0.0
        assert merged.n == 100

    def test_large_mean_small_variance_is_stable(self):
        # The regime Chan's formulation exists for: mu >> sigma.
        base = 1.0e9
        left = self.attrs_of(base + np.array([0.0, 1.0, 2.0]))
        right = self.attrs_of(base + np.array([3.0, 4.0, 5.0]))
        merged = left.merge(right)
        samples = base + np.arange(6.0)
        assert merged.mu == pytest.approx(float(np.mean(samples)), rel=1e-15)
        assert merged.sigma == pytest.approx(float(np.std(samples)), rel=1e-6)


class TestRunningAttributes:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("parts", [1, 2, 5])
    def test_update_many_then_merge_matches_numpy(self, seed, parts):
        rng = np.random.default_rng(100 + seed)
        samples = rng.normal(2.0, 0.5, 150)
        pieces = (
            [samples] if parts == 1 else random_splits(rng, samples, parts)
        )
        accs = []
        for piece in pieces:
            acc = RunningAttributes()
            acc.update_many(piece)
            accs.append(acc)
        merged = accs[0]
        for acc in accs[1:]:
            merged = merged.merge(acc)
        assert merged.n == len(samples)
        assert merged.mean == pytest.approx(float(np.mean(samples)), rel=1e-12)
        assert merged.sigma == pytest.approx(
            float(np.std(samples)), rel=1e-9, abs=1e-12
        )

    def test_scalar_updates_match_update_many(self):
        samples = np.array([1.0, 2.0, 2.0, 9.0, -4.0])
        one_by_one, bulk = RunningAttributes(), RunningAttributes()
        for value in samples:
            one_by_one.update(float(value))
        bulk.update_many(samples)
        assert one_by_one.n == bulk.n
        assert one_by_one.mean == pytest.approx(bulk.mean, rel=1e-12)
        assert one_by_one.sigma == pytest.approx(bulk.sigma, rel=1e-12)

    def test_merge_with_empty_is_identity(self):
        acc = RunningAttributes()
        acc.update_many(np.array([1.0, 2.0, 3.0]))
        merged = acc.merge(RunningAttributes())
        assert merged.n == 3
        assert merged.mean == pytest.approx(2.0)

    def test_finalize_round_trips_to_power_attributes(self):
        samples = np.array([1.0, 4.0, 4.0, 7.0])
        acc = RunningAttributes()
        acc.update_many(samples)
        attrs = acc.finalize()
        assert isinstance(attrs, PowerAttributes)
        assert attrs.n == 4
        assert attrs.mu == pytest.approx(4.0)
        assert attrs.sigma == pytest.approx(float(np.std(samples)))

    def test_finalize_empty_rejected(self):
        with pytest.raises(ValueError):
            RunningAttributes().finalize()
