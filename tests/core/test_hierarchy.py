"""Tests for the hierarchical-PSM extension (paper Sec. VII future work)."""

import numpy as np
import pytest

from repro.core.hierarchy import (
    HierarchicalPsmFlow,
    run_hierarchical_power_simulation,
)
from repro.core.metrics import mre
from repro.core.pipeline import PsmFlow
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS


@pytest.fixture(scope="module")
def camellia_material():
    spec = BENCHMARKS["Camellia"]
    training = run_hierarchical_power_simulation(
        spec.module_class(), spec.short_ts()
    )
    return spec, training


class TestTrainingPair:
    def test_probe_variables_recorded(self, camellia_material):
        spec, training = camellia_material
        assert "cycle_counter" in training.trace

    def test_components_cover_the_module(self, camellia_material):
        spec, training = camellia_material
        assert {"feistel_left", "fl_layer", "sbox_unit"} <= set(
            training.components
        )

    def test_component_traces_sum_to_total(self, camellia_material):
        spec, training = camellia_material
        summed = np.sum(
            [t.values for t in training.components.values()], axis=0
        )
        # per-component noise streams differ from the total's, so allow
        # the noise scale (0.2% relative) in the comparison
        assert np.allclose(summed, training.total.values, rtol=0.05, atol=1e-4)

    def test_lengths_consistent(self, camellia_material):
        spec, training = camellia_material
        for trace in training.components.values():
            assert len(trace) == len(training.trace)


class TestHierarchicalFlow:
    def test_fit_creates_one_flow_per_component(self, camellia_material):
        spec, training = camellia_material
        flow = HierarchicalPsmFlow().fit([training])
        assert set(flow.flows) == set(training.components)
        assert flow.total_states() > len(flow.flows)

    def test_estimate_sums_components(self, camellia_material):
        spec, training = camellia_material
        flow = HierarchicalPsmFlow().fit([training])
        result = flow.estimate(training.trace)
        summed = np.sum(
            [
                r.estimated.values
                for r in result.per_component.values()
            ],
            axis=0,
        )
        assert np.allclose(result.estimated.values, summed)

    def test_beats_flat_model_on_camellia(self, camellia_material):
        """The headline of the extension: the paper's Sec. VII claim."""
        spec, training = camellia_material
        flat_training = run_power_simulation(
            spec.module_class(), spec.short_ts()
        )
        flat = PsmFlow(spec.flow_config()).fit(
            [flat_training.trace], [flat_training.power]
        )
        flat_error = mre(
            flat.estimate(flat_training.trace).estimated,
            flat_training.power,
        )
        hier = HierarchicalPsmFlow().fit([training])
        hier_error = mre(
            hier.estimate(training.trace).estimated, training.total
        )
        assert hier_error < flat_error / 2

    def test_estimate_requires_fit(self, camellia_material):
        spec, training = camellia_material
        with pytest.raises(RuntimeError):
            HierarchicalPsmFlow().estimate(training.trace)

    def test_fit_requires_training(self):
        with pytest.raises(ValueError):
            HierarchicalPsmFlow().fit([])

    def test_mismatched_component_sets_rejected(self, camellia_material):
        spec, training = camellia_material
        other = run_hierarchical_power_simulation(
            BENCHMARKS["RAM"].module_class(), BENCHMARKS["RAM"].short_ts()
        )
        with pytest.raises(ValueError):
            HierarchicalPsmFlow().fit([training, other])

    def test_generalises_to_long_trace(self, camellia_material):
        """Evaluated on covered behaviours (no clock gating, which the
        Camellia verification suite deliberately lacks — that coverage
        gap is the WSP story, tested separately)."""
        from repro.testbench import camellia_long_ts

        spec, training = camellia_material
        flow = HierarchicalPsmFlow().fit([training])
        evaluation = run_hierarchical_power_simulation(
            spec.module_class(),
            camellia_long_ts(2000, include_gating=False),
        )
        result = flow.estimate(evaluation.trace)
        assert mre(result.estimated, evaluation.total) < 15.0
