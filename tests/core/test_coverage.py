"""Tests for the model-coverage diagnostics."""

import pytest

from repro.core.coverage import coverage_report
from repro.core.mergeability import MergePolicy
from repro.core.mining import MinerConfig
from repro.core.pipeline import FlowConfig, PsmFlow
from repro.traces.functional import FunctionalTrace
from repro.traces.power import PowerTrace
from repro.traces.variables import int_in


def fit_world():
    """Three modes: idle(0)/busy(1)/turbo(2) with distinct power."""
    values = (
        [0] * 5 + [1] * 5 + [0] * 5 + [2] * 5 + [0] * 5 + [1] * 5 + [0] * 2
    )
    trace = FunctionalTrace([int_in("x", 2)], {"x": values})
    levels = {0: 1.0, 1: 5.0, 2: 9.0}
    power = PowerTrace([levels[v] for v in values])
    config = FlowConfig(
        miner=MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0),
        merge=MergePolicy(max_cv=None),
    )
    return PsmFlow(config).fit([trace], [power]), trace


class TestCoverageReport:
    def test_training_trace_covers_everything(self):
        flow, trace = fit_world()
        report = coverage_report(flow, trace)
        assert report.state_coverage == 1.0
        assert report.trace_coverage == 1.0
        assert report.unseen_propositions == []
        assert report.total_instants == len(trace)

    def test_partial_trace_misses_states(self):
        flow, _ = fit_world()
        partial = FunctionalTrace(
            [int_in("x", 2)], {"x": [0] * 5 + [1] * 5 + [0] * 3}
        )
        report = coverage_report(flow, partial)
        assert report.state_coverage < 1.0
        assert report.unvisited_states
        # the turbo proposition was never observed
        assert report.unseen_propositions

    def test_unknown_behaviour_counted(self):
        flow, _ = fit_world()
        alien = FunctionalTrace(
            [int_in("x", 2)], {"x": [0] * 5 + [3] * 5 + [0] * 3}
        )
        report = coverage_report(flow, alien)
        assert report.unknown_instants >= 5
        assert report.trace_coverage < 1.0

    def test_occupancy_counts_sum_to_explained_instants(self):
        flow, trace = fit_world()
        report = coverage_report(flow, trace)
        assert (
            sum(report.state_occupancy.values())
            == report.total_instants - report.desync_instants
        )

    def test_transition_coverage_bounds(self):
        flow, trace = fit_world()
        report = coverage_report(flow, trace)
        assert 0.0 < report.transition_coverage <= 1.0

    def test_summary_mentions_key_figures(self):
        flow, trace = fit_world()
        text = coverage_report(flow, trace).summary()
        assert "state coverage" in text
        assert "100.0%" in text

    def test_requires_fitted_flow(self):
        flow, trace = fit_world()
        with pytest.raises(RuntimeError):
            coverage_report(PsmFlow(), trace)

    def test_accepts_precomputed_result(self):
        flow, trace = fit_world()
        result = flow.estimate(trace)
        report = coverage_report(flow, trace, result)
        assert report.total_instants == len(trace)
