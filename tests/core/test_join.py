"""Tests for the join procedure (paper Sec. IV, Fig. 6b)."""

import pytest

from repro.core.generator import generate_psm, generate_psms
from repro.core.join import join, merge_states
from repro.core.mergeability import MergePolicy
from repro.core.propositions import Proposition, PropositionTrace, VarEqualsConst
from repro.core.psm import total_states
from repro.core.temporal import ChoiceAssertion, UntilAssertion
from repro.traces.power import PowerTrace


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


POLICY = MergePolicy(max_cv=None)


def make_psms():
    """Two chain PSMs from two traces sharing an idle power level."""
    p = props(4)
    # trace 0: idle(1.0) -> busy(9.0) -> idle(1.0)
    seq0 = [p[0]] * 4 + [p[1]] * 4 + [p[0]] * 4 + [p[2]]
    pw0 = [1.0, 1.02, 0.98, 1.0, 9.0, 9.1, 8.9, 9.0, 1.0, 1.01, 0.99, 1.0, 1.0]
    # trace 1: idle(1.0) -> sleep-ish(1.0) via a different proposition
    seq1 = [p[0]] * 4 + [p[3]] * 4 + [p[2]]
    pw1 = [1.0, 1.01, 0.99, 1.0, 1.0, 1.02, 0.98, 1.0, 1.0]
    gammas = [
        PropositionTrace(seq0, trace_id=0),
        PropositionTrace(seq1, trace_id=1),
    ]
    deltas = [PowerTrace(pw0), PowerTrace(pw1)]
    return p, generate_psms(gammas, deltas), {0: deltas[0], 1: deltas[1]}


class TestMergeStates:
    def test_choice_assertion_members(self):
        p, psms, powers = make_psms()
        idle_a = psms[0].states[0]
        idle_b = psms[0].states[2]
        merged = merge_states([idle_a, idle_b], powers)
        assert isinstance(merged.assertion, ChoiceAssertion)
        assert idle_a.assertion in merged.assertion.parts
        assert idle_b.assertion in merged.assertion.parts
        assert merged.n == idle_a.n + idle_b.n

    def test_choice_assertion_multiplicity_of_identical_members(self):
        p, psms, powers = make_psms()
        from repro.core.attributes import Interval, PowerAttributes
        from repro.core.psm import PowerState

        assertion = UntilAssertion(p[0], p[1])
        twin_a = PowerState(
            assertion=assertion,
            attributes=PowerAttributes(1.0, 0.01, 4),
            intervals=[Interval(0, 0, 3)],
        )
        twin_b = PowerState(
            assertion=assertion,
            attributes=PowerAttributes(1.0, 0.01, 4),
            intervals=[Interval(1, 0, 3)],
        )
        merged = merge_states([twin_a, twin_b], powers)
        assert merged.assertion.multiplicity(assertion) == 2
        assert len(merged.assertion.alternatives()) == 1

    def test_intervals_collected(self):
        p, psms, powers = make_psms()
        merged = merge_states(
            [psms[0].states[0], psms[0].states[2]], powers
        )
        assert len(merged.intervals) == 2

    def test_single_state_rejected(self):
        p, psms, powers = make_psms()
        with pytest.raises(ValueError):
            merge_states([psms[0].states[0]], powers)


class TestJoin:
    def test_cross_psm_merge_reduces_set(self):
        p, psms, powers = make_psms()
        joined = join(psms, powers, POLICY)
        # the idle states of both PSMs merge -> the two machines fuse
        assert len(joined) == 1

    def test_busy_state_survives(self):
        p, psms, powers = make_psms()
        joined = join(psms, powers, POLICY)
        mus = sorted(s.mu for s in joined[0].states)
        assert mus[-1] == pytest.approx(8.99, abs=0.1)

    def test_state_count_reduced(self):
        p, psms, powers = make_psms()
        before = total_states(psms)
        joined = join(psms, powers, POLICY)
        assert total_states(joined) < before

    def test_initial_states_preserved(self):
        p, psms, powers = make_psms()
        joined = join(psms, powers, POLICY)
        assert len(joined[0].initial_states) >= 1

    def test_transitions_rewired_to_merged_state(self):
        p, psms, powers = make_psms()
        joined = join(psms, powers, POLICY)
        machine = joined[0]
        machine.validate()
        # every transition endpoint exists
        for transition in machine.transitions:
            assert machine.has_state(transition.src)
            assert machine.has_state(transition.dst)

    def test_adjacent_merge_becomes_self_loop(self):
        p = props(3)
        # idle -> idle2 (same power, adjacent, different props)
        seq = [p[0]] * 4 + [p[1]] * 4 + [p[2]]
        power = PowerTrace([1.0, 1.01, 0.99, 1.0] * 2 + [1.0])
        psm = generate_psm(PropositionTrace(seq), power)
        joined = join([psm], {0: power}, POLICY)
        machine = joined[0]
        assert len(machine) == 1
        loops = [
            t for t in machine.transitions if t.src == t.dst
        ]
        assert len(loops) == 1
        assert loops[0].enabling is p[1]

    def test_input_psms_not_modified(self):
        p, psms, powers = make_psms()
        before = [len(m) for m in psms]
        join(psms, powers, POLICY)
        assert [len(m) for m in psms] == before

    def test_unmergeable_set_unchanged(self):
        p = props(2)
        seq = [p[0]] * 4 + [p[1]]
        power = PowerTrace([1.0] * 5)
        psm = generate_psm(PropositionTrace(seq), power)
        joined = join([psm], {0: power}, POLICY)
        assert total_states(joined) == 1

    def test_nondeterminism_possible_after_join(self):
        """Merging states with identical assertions and guards yields a
        non-deterministic machine (the case Sec. IV calls out)."""
        p = props(3)
        # two occurrences of the same until behaviour with the same exit,
        # but different successors' power so the successors stay distinct
        seq = (
            [p[0]] * 4 + [p[1]] * 4 + [p[0]] * 4 + [p[2]] * 4 + [p[1]]
        )
        power = PowerTrace(
            [1.0, 1.01, 0.99, 1.0]
            + [5.0, 5.02, 4.98, 5.0]
            + [1.0, 1.02, 0.98, 1.01]
            + [9.0, 9.05, 8.95, 9.0]
            + [5.0]
        )
        psm = generate_psm(PropositionTrace(seq), power)
        joined = join([psm], {0: power}, POLICY)
        machine = joined[0]
        # the two p_0-idle states merged; their exits lead to the 5.0
        # and 9.0 states under different guards (p_1 vs p_2), so the
        # machine may or may not be deterministic; validate structure.
        machine.validate()
        assert total_states(joined) == 3


def join_snapshot(psms):
    """Sid-normalized structural view of a joined PSM set."""
    out = []
    for psm in sorted(psms, key=lambda m: min(s.sid for s in m.states)):
        states = sorted(psm.states, key=lambda s: s.sid)
        sid_map = {s.sid: k for k, s in enumerate(states)}
        out.append(
            (
                [
                    (
                        sid_map[s.sid],
                        repr(s.assertion),
                        s.attributes.mu,
                        s.attributes.sigma,
                        s.attributes.n,
                        tuple(
                            (iv.trace_id, iv.start, iv.stop)
                            for iv in s.intervals
                        ),
                    )
                    for s in states
                ],
                sorted(
                    (sid_map[t.src], sid_map[t.dst], repr(t.enabling))
                    for t in psm.transitions
                ),
                sorted(sid_map[s.sid] for s in psm.initial_states),
            )
        )
    return out


class TestJoinEngines:
    """The matrix engine must reproduce the scalar oracle bit for bit."""

    def test_engines_identical_on_shared_idle(self):
        p, psms, power = make_psms()
        matrix = join_snapshot(join(psms, power, POLICY, engine="matrix"))
        scalar = join_snapshot(join(psms, power, POLICY, engine="scalar"))
        assert matrix == scalar

    def test_engines_identical_on_randomized_chains(self):
        import numpy as np

        rng = np.random.default_rng(314)
        alphabet = props(4)
        for _ in range(15):
            length = int(rng.integers(8, 120))
            indices = []
            while len(indices) < length:
                indices.extend(
                    [int(rng.integers(0, 4))] * int(rng.integers(1, 6))
                )
            gamma = PropositionTrace.from_indices(
                np.asarray(indices[:length], dtype=np.int32), alphabet, 0
            )
            # a few power levels with noise so some states merge
            delta = PowerTrace(
                rng.normal(0, 0.02, length)
                + np.asarray(indices[:length]) * 2.0
                + 1.0
            )
            psms = [generate_psm(gamma, delta)]
            matrix = join_snapshot(
                join(psms, {0: delta}, POLICY, engine="matrix")
            )
            scalar = join_snapshot(
                join(psms, {0: delta}, POLICY, engine="scalar")
            )
            assert matrix == scalar

    def test_auto_selects_by_state_count(self):
        p, psms, power = make_psms()
        # auto must give the same result regardless of which backend it
        # picks on either side of the threshold
        auto = join_snapshot(join(psms, power, POLICY, engine="auto"))
        scalar = join_snapshot(join(psms, power, POLICY, engine="scalar"))
        assert auto == scalar

    def test_unknown_engine_rejected(self):
        p, psms, power = make_psms()
        with pytest.raises(ValueError):
            join(psms, power, POLICY, engine="bogus")
