"""Tests for the XU automaton (paper Fig. 5)."""

import pytest

from repro.core.propositions import Proposition, PropositionTrace, VarEqualsConst
from repro.core.temporal import NextAssertion, UntilAssertion
from repro.core.xu import STATE_U, STATE_X, XUAutomaton, mine_patterns


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


class TestFig5WorkedExample:
    """The paper's worked example: p_a U p_b, p_b U p_c, p_c X p_d."""

    def trace(self):
        p = props(4)
        # p_a p_a p_a p_b p_b p_b p_c p_d  (Fig. 3's proposition trace)
        return p, PropositionTrace(
            [p[0], p[0], p[0], p[1], p[1], p[1], p[2], p[3]]
        )

    def test_patterns_and_intervals(self):
        p, trace = self.trace()
        mined = mine_patterns(trace)
        assert len(mined) == 3
        assert mined[0].assertion == UntilAssertion(p[0], p[1])
        assert (mined[0].start, mined[0].stop) == (0, 2)
        assert mined[1].assertion == UntilAssertion(p[1], p[2])
        assert (mined[1].start, mined[1].stop) == (3, 5)
        assert mined[2].assertion == NextAssertion(p[2], p[3])
        assert (mined[2].start, mined[2].stop) == (6, 6)

    def test_next_pattern_has_n_one(self):
        # merge Case 1 relies on next-based states having n = 1
        _, trace = self.trace()
        assert mine_patterns(trace)[2].n == 1

    def test_until_pattern_counts_body_instants(self):
        _, trace = self.trace()
        assert mine_patterns(trace)[0].n == 3

    def test_initial_state_is_x(self):
        _, trace = self.trace()
        automaton = XUAutomaton(trace)
        assert automaton.state == STATE_X

    def test_automaton_enters_u_on_equal_fifo(self):
        _, trace = self.trace()
        automaton = XUAutomaton(trace)
        automaton.get_assertion()
        # after recognising the first until pattern the automaton is back
        # in X (it immediately re-enters U when asked again)
        assert automaton.state == STATE_X


class TestEdgeCases:
    def test_empty_trace(self):
        assert mine_patterns(PropositionTrace([])) == []

    def test_single_instant(self):
        p = props(1)
        assert mine_patterns(PropositionTrace([p[0]])) == []

    def test_two_equal_instants_incomplete_until(self):
        p = props(1)
        # the until run never sees its exit proposition: no state
        assert mine_patterns(PropositionTrace([p[0], p[0]])) == []

    def test_two_distinct_instants_next(self):
        p = props(2)
        mined = mine_patterns(PropositionTrace([p[0], p[1]]))
        assert len(mined) == 1
        assert mined[0].assertion == NextAssertion(p[0], p[1])
        assert mined[0].is_next

    def test_all_distinct_jump_sequence(self):
        p = props(4)
        mined = mine_patterns(PropositionTrace(p))
        assert [m.assertion for m in mined] == [
            NextAssertion(p[0], p[1]),
            NextAssertion(p[1], p[2]),
            NextAssertion(p[2], p[3]),
        ]
        assert all(m.n == 1 for m in mined)

    def test_trailing_until_discarded(self):
        p = props(2)
        trace = PropositionTrace([p[0], p[1], p[1], p[1]])
        mined = mine_patterns(trace)
        # p_0 X p_1 is recognised; the trailing p_1 run has no exit
        assert len(mined) == 1
        assert mined[0].assertion == NextAssertion(p[0], p[1])

    def test_alternating_until_next(self):
        p = props(3)
        # p0 p0 p1 p2 p2 p0 : until, next, until(incomplete exit=p0? no)
        trace = PropositionTrace([p[0], p[0], p[1], p[2], p[2], p[0]])
        mined = mine_patterns(trace)
        assert mined[0].assertion == UntilAssertion(p[0], p[1])
        assert mined[1].assertion == NextAssertion(p[1], p[2])
        assert mined[2].assertion == UntilAssertion(p[2], p[0])
        assert (mined[2].start, mined[2].stop) == (3, 4)

    def test_intervals_are_disjoint_and_ordered(self):
        p = props(3)
        trace = PropositionTrace(
            [p[0], p[0], p[1], p[1], p[2], p[0], p[0], p[1]]
        )
        mined = mine_patterns(trace)
        previous_stop = -1
        for pattern in mined:
            assert pattern.start > previous_stop
            assert pattern.stop >= pattern.start
            previous_stop = pattern.stop

    def test_str_representation(self):
        p = props(2)
        mined = mine_patterns(PropositionTrace([p[0], p[1]]))
        assert str(mined[0]) == "<p_0 X p_1, 0, 0>"
