"""Tests for the data-dependent regression refinement (paper Sec. IV)."""

import numpy as np
import pytest

from repro.core.attributes import Interval, PowerAttributes
from repro.core.propositions import Proposition, VarEqualsConst
from repro.core.psm import PSM, ConstantPower, PowerState, RegressionPower
from repro.core.regression import (
    RefinePolicy,
    RegressionSample,
    assertion_body,
    fit_regression,
    refine_data_dependent,
)
from repro.core.temporal import ChoiceAssertion, SequenceAssertion, UntilAssertion
from repro.traces.functional import FunctionalTrace
from repro.traces.power import PowerTrace
from repro.traces.variables import int_in


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


def linear_world(n=64, slope=0.01, intercept=0.1, noise=0.0, seed=0):
    """A trace whose power is linear in the input Hamming distance."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, n).tolist()
    trace = FunctionalTrace([int_in("d", 8)], {"d": data})
    hd = trace.hamming_distances()
    power = intercept + slope * hd
    if noise:
        power = power + rng.normal(0, noise, n)
    return trace, PowerTrace(np.clip(power, 0, None))


def state_over(trace_id, start, stop, power, assertion=None):
    p = props(2)
    assertion = assertion or UntilAssertion(p[0], p[1])
    return PowerState(
        assertion=assertion,
        attributes=PowerAttributes.from_power_trace(power, start, stop),
        intervals=[Interval(trace_id, start, stop)],
    )


class TestFitRegression:
    def test_exact_line_recovered(self):
        x = np.array([0.0, 1, 2, 3, 4])
        y = 0.5 + 2.0 * x
        model = fit_regression(RegressionSample(x, y))
        assert model.slope == pytest.approx(2.0)
        assert model.intercept == pytest.approx(0.5)
        assert model.correlation == pytest.approx(1.0)

    def test_degenerate_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_regression(RegressionSample(np.ones(5), np.arange(5.0)))

    def test_estimate(self):
        model = RegressionPower(slope=2.0, intercept=1.0, correlation=0.9)
        assert model.estimate(3) == pytest.approx(7.0)


class TestRefinePolicy:
    def test_candidate_by_cv(self):
        policy = RefinePolicy(cv_threshold=0.2, min_samples=3)
        p = props(2)
        assertion = UntilAssertion(p[0], p[1])
        low = PowerState(
            assertion=assertion, attributes=PowerAttributes(1.0, 0.1, 10)
        )
        high = PowerState(
            assertion=assertion, attributes=PowerAttributes(1.0, 0.5, 10)
        )
        assert not policy.is_candidate(low)
        assert policy.is_candidate(high)

    def test_small_n_never_candidate(self):
        policy = RefinePolicy(min_samples=8)
        p = props(2)
        state = PowerState(
            assertion=UntilAssertion(p[0], p[1]),
            attributes=PowerAttributes(1.0, 5.0, 4),
        )
        assert not policy.is_candidate(state)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cv_threshold": -0.1},
            {"corr_threshold": 0.0},
            {"corr_threshold": 1.5},
            {"min_samples": 2},
        ],
    )
    def test_invalid_policy(self, kwargs):
        with pytest.raises(ValueError):
            RefinePolicy(**kwargs)


class TestRefineDataDependent:
    def test_linear_state_gets_regression(self):
        trace, power = linear_world(noise=0.001)
        state = state_over(0, 0, len(power) - 1, power)
        psm = PSM()
        psm.add_state(state, initial=True)
        refined = refine_data_dependent(
            [psm], {0: trace}, {0: power},
            RefinePolicy(cv_threshold=0.05, min_samples=8, pool_same_body=False),
        )
        assert refined == 1
        assert isinstance(state.power_model, RegressionPower)
        assert state.power_model.slope == pytest.approx(0.01, rel=0.2)

    def test_uncorrelated_state_stays_constant(self):
        rng = np.random.default_rng(1)
        trace, _ = linear_world()
        power = PowerTrace(rng.uniform(1.0, 3.0, len(trace)))
        state = state_over(0, 0, len(power) - 1, power)
        psm = PSM()
        psm.add_state(state, initial=True)
        refined = refine_data_dependent(
            [psm], {0: trace}, {0: power},
            RefinePolicy(cv_threshold=0.05, pool_same_body=False),
        )
        assert refined == 0
        assert isinstance(state.power_model, ConstantPower)

    def test_negative_slope_rejected(self):
        trace, power = linear_world(slope=0.01)
        inverted = PowerTrace(power.values.max() - power.values + 0.01)
        state = state_over(0, 0, len(inverted) - 1, inverted)
        psm = PSM()
        psm.add_state(state, initial=True)
        refined = refine_data_dependent(
            [psm], {0: trace}, {0: inverted},
            RefinePolicy(cv_threshold=0.01, pool_same_body=False),
        )
        assert refined == 0

    def test_low_cv_state_not_touched(self):
        trace, _ = linear_world()
        power = PowerTrace(np.full(len(trace), 2.0))
        state = state_over(0, 0, len(power) - 1, power)
        psm = PSM()
        psm.add_state(state, initial=True)
        refined = refine_data_dependent(
            [psm], {0: trace}, {0: power},
            RefinePolicy(cv_threshold=0.05, pool_same_body=False),
        )
        assert refined == 0


class TestPooledSameBody:
    def test_same_body_alias_states_share_the_fit(self):
        """A state trained on homogeneous data gets the joint line."""
        trace, power = linear_world(n=128, noise=0.001, seed=3)
        p = props(3)
        body = UntilAssertion(p[0], p[1])
        alias = UntilAssertion(p[0], p[2])  # same body, different exit
        rich = PowerState(
            assertion=body,
            attributes=PowerAttributes.from_power_trace(power, 0, 99),
            intervals=[Interval(0, 0, 99)],
        )
        poor = PowerState(
            assertion=alias,
            attributes=PowerAttributes.from_power_trace(power, 100, 104),
            intervals=[Interval(0, 100, 104)],
        )
        psm = PSM()
        psm.add_state(rich, initial=True)
        psm.add_state(poor)
        refine_data_dependent(
            [psm], {0: trace}, {0: power},
            RefinePolicy(cv_threshold=0.05, min_samples=8, pool_same_body=True),
        )
        assert isinstance(poor.power_model, RegressionPower)

    def test_bodies_of_composite_assertions(self):
        p = props(4)
        seq = SequenceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[1], p[2])]
        )
        choice = ChoiceAssertion(
            [UntilAssertion(p[0], p[1]), UntilAssertion(p[3], p[1])]
        )
        simple = UntilAssertion(p[0], p[1])
        attrs = PowerAttributes(1.0, 0.0, 2)
        assert assertion_body(PowerState(seq, attrs)) == {p[0], p[1]}
        assert assertion_body(PowerState(choice, attrs)) == {p[0], p[3]}
        assert assertion_body(PowerState(simple, attrs)) == {p[0]}
