"""Tests for atomic propositions and minterm propositions."""

import numpy as np
import pytest

from repro.core.propositions import (
    Proposition,
    PropositionTrace,
    VarCompare,
    VarEqualsConst,
)
from repro.traces.functional import FunctionalTrace
from repro.traces.variables import bool_in, int_in


@pytest.fixture
def trace():
    return FunctionalTrace(
        [bool_in("en"), int_in("a", 4), int_in("b", 4)],
        {"en": [1, 0, 1], "a": [3, 5, 5], "b": [3, 2, 7]},
    )


class TestVarEqualsConst:
    def test_evaluate(self):
        atom = VarEqualsConst("a", 5)
        assert atom.evaluate({"a": 5})
        assert not atom.evaluate({"a": 4})

    def test_evaluate_trace(self, trace):
        atom = VarEqualsConst("a", 5)
        assert atom.evaluate_trace(trace).tolist() == [False, True, True]

    def test_bool_display(self):
        assert str(VarEqualsConst("en", 1, is_bool=True)) == "en=true"
        assert str(VarEqualsConst("en", 0, is_bool=True)) == "en=false"

    def test_int_display(self):
        assert str(VarEqualsConst("a", 5)) == "a=5"

    def test_equality_ignores_display_flag(self):
        assert VarEqualsConst("a", 1, is_bool=True) == VarEqualsConst("a", 1)
        assert hash(VarEqualsConst("a", 1, is_bool=True)) == hash(
            VarEqualsConst("a", 1)
        )

    def test_variables(self):
        assert VarEqualsConst("a", 1).variables() == ("a",)


class TestVarCompare:
    def test_all_operators(self):
        row = {"a": 3, "b": 5}
        assert VarCompare("a", "<", "b").evaluate(row)
        assert VarCompare("a", "<=", "b").evaluate(row)
        assert VarCompare("a", "!=", "b").evaluate(row)
        assert not VarCompare("a", ">", "b").evaluate(row)
        assert not VarCompare("a", ">=", "b").evaluate(row)
        assert not VarCompare("a", "==", "b").evaluate(row)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            VarCompare("a", "<>", "b")

    def test_evaluate_trace(self, trace):
        atom = VarCompare("a", ">", "b")
        assert atom.evaluate_trace(trace).tolist() == [False, True, False]

    def test_display(self):
        assert str(VarCompare("a", ">", "b")) == "a>b"

    def test_equality(self):
        assert VarCompare("a", ">", "b") == VarCompare("a", ">", "b")
        assert VarCompare("a", ">", "b") != VarCompare("b", ">", "a")

    def test_variables(self):
        assert VarCompare("a", ">", "b").variables() == ("a", "b")


class TestProposition:
    def test_minterm_evaluation(self):
        prop = Proposition(
            "p",
            positives=[VarEqualsConst("en", 1)],
            negatives=[VarCompare("a", ">", "b")],
        )
        assert prop.evaluate({"en": 1, "a": 1, "b": 2})
        assert not prop.evaluate({"en": 1, "a": 3, "b": 2})
        assert not prop.evaluate({"en": 0, "a": 1, "b": 2})

    def test_conflicting_atoms_rejected(self):
        atom = VarEqualsConst("en", 1)
        with pytest.raises(ValueError):
            Proposition("p", [atom], [atom])

    def test_evaluate_trace(self, trace):
        prop = Proposition(
            "p",
            positives=[VarEqualsConst("en", 1)],
            negatives=[VarCompare("a", "==", "b")],
        )
        assert prop.evaluate_trace(trace).tolist() == [False, False, True]

    def test_equality_by_minterm_not_label(self):
        a = Proposition("p_a", [VarEqualsConst("en", 1)])
        b = Proposition("p_zz", [VarEqualsConst("en", 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_mutual_exclusivity_over_same_alphabet(self, trace):
        atom = VarEqualsConst("en", 1)
        positive = Proposition("p", [atom], [])
        negative = Proposition("q", [], [atom])
        both = positive.evaluate_trace(trace) & negative.evaluate_trace(trace)
        assert not both.any()

    def test_formula_lists_positives(self):
        prop = Proposition(
            "p",
            [VarEqualsConst("en", 1, is_bool=True), VarCompare("a", ">", "b")],
            [VarEqualsConst("a", 0)],
        )
        assert prop.formula() == "a>b & en=true"

    def test_empty_formula(self):
        assert Proposition("p", []).formula() == "true"


class TestPropositionTrace:
    def test_indexing_and_nil(self):
        p = Proposition("p", [])
        trace = PropositionTrace([p, p], trace_id=3)
        assert trace.at(0) is p
        assert trace.at(2) is None
        assert trace.at(-1) is None
        assert trace.trace_id == 3

    def test_distinct_counts(self):
        p = Proposition("p", [VarEqualsConst("x", 1)])
        q = Proposition("q", [VarEqualsConst("x", 2)])
        trace = PropositionTrace([p, q, p])
        assert trace.distinct() == {p: 2, q: 1}
