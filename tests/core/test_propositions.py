"""Tests for atomic propositions and minterm propositions."""

import numpy as np
import pytest

from repro.core.propositions import (
    Proposition,
    PropositionTrace,
    RunSegment,
    VarCompare,
    VarEqualsConst,
    run_length_encode,
)
from repro.traces.functional import FunctionalTrace
from repro.traces.variables import bool_in, int_in


@pytest.fixture
def trace():
    return FunctionalTrace(
        [bool_in("en"), int_in("a", 4), int_in("b", 4)],
        {"en": [1, 0, 1], "a": [3, 5, 5], "b": [3, 2, 7]},
    )


class TestVarEqualsConst:
    def test_evaluate(self):
        atom = VarEqualsConst("a", 5)
        assert atom.evaluate({"a": 5})
        assert not atom.evaluate({"a": 4})

    def test_evaluate_trace(self, trace):
        atom = VarEqualsConst("a", 5)
        assert atom.evaluate_trace(trace).tolist() == [False, True, True]

    def test_bool_display(self):
        assert str(VarEqualsConst("en", 1, is_bool=True)) == "en=true"
        assert str(VarEqualsConst("en", 0, is_bool=True)) == "en=false"

    def test_int_display(self):
        assert str(VarEqualsConst("a", 5)) == "a=5"

    def test_equality_ignores_display_flag(self):
        assert VarEqualsConst("a", 1, is_bool=True) == VarEqualsConst("a", 1)
        assert hash(VarEqualsConst("a", 1, is_bool=True)) == hash(
            VarEqualsConst("a", 1)
        )

    def test_variables(self):
        assert VarEqualsConst("a", 1).variables() == ("a",)


class TestVarCompare:
    def test_all_operators(self):
        row = {"a": 3, "b": 5}
        assert VarCompare("a", "<", "b").evaluate(row)
        assert VarCompare("a", "<=", "b").evaluate(row)
        assert VarCompare("a", "!=", "b").evaluate(row)
        assert not VarCompare("a", ">", "b").evaluate(row)
        assert not VarCompare("a", ">=", "b").evaluate(row)
        assert not VarCompare("a", "==", "b").evaluate(row)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            VarCompare("a", "<>", "b")

    def test_evaluate_trace(self, trace):
        atom = VarCompare("a", ">", "b")
        assert atom.evaluate_trace(trace).tolist() == [False, True, False]

    def test_display(self):
        assert str(VarCompare("a", ">", "b")) == "a>b"

    def test_equality(self):
        assert VarCompare("a", ">", "b") == VarCompare("a", ">", "b")
        assert VarCompare("a", ">", "b") != VarCompare("b", ">", "a")

    def test_variables(self):
        assert VarCompare("a", ">", "b").variables() == ("a", "b")


class TestProposition:
    def test_minterm_evaluation(self):
        prop = Proposition(
            "p",
            positives=[VarEqualsConst("en", 1)],
            negatives=[VarCompare("a", ">", "b")],
        )
        assert prop.evaluate({"en": 1, "a": 1, "b": 2})
        assert not prop.evaluate({"en": 1, "a": 3, "b": 2})
        assert not prop.evaluate({"en": 0, "a": 1, "b": 2})

    def test_conflicting_atoms_rejected(self):
        atom = VarEqualsConst("en", 1)
        with pytest.raises(ValueError):
            Proposition("p", [atom], [atom])

    def test_evaluate_trace(self, trace):
        prop = Proposition(
            "p",
            positives=[VarEqualsConst("en", 1)],
            negatives=[VarCompare("a", "==", "b")],
        )
        assert prop.evaluate_trace(trace).tolist() == [False, False, True]

    def test_equality_by_minterm_not_label(self):
        a = Proposition("p_a", [VarEqualsConst("en", 1)])
        b = Proposition("p_zz", [VarEqualsConst("en", 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_mutual_exclusivity_over_same_alphabet(self, trace):
        atom = VarEqualsConst("en", 1)
        positive = Proposition("p", [atom], [])
        negative = Proposition("q", [], [atom])
        both = positive.evaluate_trace(trace) & negative.evaluate_trace(trace)
        assert not both.any()

    def test_formula_lists_positives(self):
        prop = Proposition(
            "p",
            [VarEqualsConst("en", 1, is_bool=True), VarCompare("a", ">", "b")],
            [VarEqualsConst("a", 0)],
        )
        assert prop.formula() == "a>b & en=true"

    def test_empty_formula(self):
        assert Proposition("p", []).formula() == "true"


class TestPropositionTrace:
    def test_indexing_and_nil(self):
        p = Proposition("p", [])
        trace = PropositionTrace([p, p], trace_id=3)
        assert trace.at(0) is p
        assert trace.at(2) is None
        assert trace.at(-1) is None
        assert trace.trace_id == 3

    def test_distinct_counts(self):
        p = Proposition("p", [VarEqualsConst("x", 1)])
        q = Proposition("q", [VarEqualsConst("x", 2)])
        trace = PropositionTrace([p, q, p])
        assert trace.distinct() == {p: 2, q: 1}


class TestIndexBackedTrace:
    def make_props(self):
        p = Proposition("p", [VarEqualsConst("x", 1)])
        q = Proposition("q", [VarEqualsConst("x", 2)])
        return p, q

    def test_indices_and_alphabet(self):
        p, q = self.make_props()
        trace = PropositionTrace([p, p, q, p])
        assert trace.indices.tolist() == [0, 0, 1, 0]
        assert trace.alphabet == [p, q]
        assert not trace.indices.flags.writeable

    def test_from_indices_round_trip(self):
        p, q = self.make_props()
        original = PropositionTrace([p, q, q, p], trace_id=7)
        rebuilt = PropositionTrace.from_indices(
            original.indices, original.alphabet, trace_id=7
        )
        assert list(rebuilt) == list(original)
        assert rebuilt.trace_id == 7

    def test_segments_respect_rle_invariant(self):
        p, q = self.make_props()
        trace = PropositionTrace([p, p, p, q, q, p])
        segments = list(trace.segments())
        assert segments == [
            RunSegment(0, 3, p),
            RunSegment(3, 2, q),
            RunSegment(5, 1, p),
        ]
        assert segments[0].stop == 3
        # no segment spans a proposition change
        for segment in segments:
            for t in range(segment.start, segment.stop):
                assert trace[t] is segment.prop

    def test_iteration_matches_getitem(self):
        p, q = self.make_props()
        trace = PropositionTrace([p, q, p])
        assert list(trace) == [trace[0], trace[1], trace[2]]


class TestRunLengthEncode:
    def test_basic(self):
        starts, lengths, values = run_length_encode(
            np.array([4, 4, 4, 2, 2, 9], dtype=np.int32)
        )
        assert starts.tolist() == [0, 3, 5]
        assert lengths.tolist() == [3, 2, 1]
        assert values.tolist() == [4, 2, 9]

    def test_empty(self):
        starts, lengths, values = run_length_encode(
            np.zeros(0, dtype=np.int32)
        )
        assert len(starts) == len(lengths) == len(values) == 0

    def test_single_run(self):
        starts, lengths, values = run_length_encode(
            np.array([7] * 5, dtype=np.int32)
        )
        assert starts.tolist() == [0]
        assert lengths.tolist() == [5]
        assert values.tolist() == [7]

    def test_reconstruction(self):
        rng = np.random.default_rng(1)
        indices = rng.integers(0, 3, 200).astype(np.int32)
        starts, lengths, values = run_length_encode(indices)
        rebuilt = np.repeat(values, lengths)
        assert np.array_equal(rebuilt, indices)
        assert int(lengths.sum()) == len(indices)
