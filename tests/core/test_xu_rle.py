"""RLE pattern recognizer vs the per-instant XU automaton oracle.

The RLE engine (:func:`repro.core.xu.mine_patterns_rle`) must emit
exactly the patterns the two-slot scan automaton recognises — same
assertions, same intervals, same order — on any proposition trace.
"""

import numpy as np
import pytest

from repro.core.propositions import (
    Proposition,
    PropositionTrace,
    VarEqualsConst,
)
from repro.core.xu import XUAutomaton, mine_patterns, mine_patterns_rle


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


def trace_of(indices, alphabet_size=None):
    alphabet = props(alphabet_size or (max(indices) + 1 if indices else 1))
    return PropositionTrace.from_indices(
        np.asarray(indices, dtype=np.int32), alphabet, 0
    )


def assert_engines_agree(trace):
    scan = list(XUAutomaton(trace))
    rle = mine_patterns_rle(trace)
    assert rle == scan


class TestEquivalenceOracle:
    def test_randomized_traces(self):
        rng = np.random.default_rng(1234)
        for _ in range(200):
            size = int(rng.integers(1, 5))
            length = int(rng.integers(0, 60))
            # Mix short and long runs so both next and until patterns
            # appear, including repeated identical runs.
            indices = []
            while len(indices) < length:
                indices.extend(
                    [int(rng.integers(0, size))] * int(rng.integers(1, 6))
                )
            assert_engines_agree(trace_of(indices[:length], size))

    def test_dispatch_selects_engine(self):
        p = props(2)
        trace = PropositionTrace([p[0], p[0], p[1]])
        assert mine_patterns(trace, engine="rle") == mine_patterns(
            trace, engine="scan"
        )
        with pytest.raises(ValueError):
            mine_patterns(trace, engine="bogus")


class TestKnownShapes:
    def test_empty_trace(self):
        assert mine_patterns_rle(trace_of([])) == []

    def test_single_instant(self):
        assert mine_patterns_rle(trace_of([0], 1)) == []

    def test_single_run_no_exit(self):
        # One maximal run never sees its exit proposition: nothing mined.
        assert mine_patterns_rle(trace_of([0, 0, 0], 1)) == []

    def test_trailing_run_emits_nothing(self):
        # The last run is nil in Fig. 4 — the scan oracle discards it and
        # so must the RLE engine, whatever the run's length.
        for tail in ([1], [1, 1, 1]):
            trace = trace_of([0, 0] + tail, 2)
            mined = mine_patterns_rle(trace)
            assert len(mined) == 1
            assert (mined[0].start, mined[0].stop) == (0, 1)
            assert_engines_agree(trace)

    def test_trailing_single_instant_next(self):
        # Next pattern whose follower is the final (discarded) run.
        trace = trace_of([0, 1], 2)
        mined = mine_patterns_rle(trace)
        assert len(mined) == 1
        assert mined[0].assertion.exit_proposition().label == "p_1"
        assert_engines_agree(trace)

    def test_repeated_pattern_shares_assertion_object(self):
        # The RLE engine caches assertion instances per (body, follower,
        # kind) — repeats of the same pattern must compare equal.
        trace = trace_of([0, 0, 1, 0, 0, 1, 0], 2)
        mined = mine_patterns_rle(trace)
        assert mined[0].assertion == mined[2].assertion
        assert_engines_agree(trace)

    def test_alternating_all_distinct(self):
        assert_engines_agree(trace_of([0, 1, 2, 3], 4))

    def test_paper_fig3_trace(self):
        assert_engines_agree(trace_of([0, 0, 0, 1, 1, 1, 2, 3], 4))
