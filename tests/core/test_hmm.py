"""Tests for the HMM over a PSM set (paper Sec. V)."""

import numpy as np
import pytest

from repro.core.attributes import Interval, PowerAttributes
from repro.core.hmm import PsmHmm
from repro.core.propositions import Proposition, VarEqualsConst
from repro.core.psm import PSM, PowerState, Transition
from repro.core.temporal import ChoiceAssertion, UntilAssertion


def props(n):
    return [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(n)
    ]


def build_set():
    """A small PSM with a non-deterministic choice.

    idle --p1--> busy_a (p1 U p0)
    idle --p1--> busy_b (p1 U p0)   [same guard: non-deterministic]
    plus a second machine with one state to populate pi.
    """
    p = props(3)
    idle_assert = UntilAssertion(p[0], p[1])
    busy_assert = UntilAssertion(p[1], p[0])
    idle = PowerState(
        assertion=idle_assert,
        attributes=PowerAttributes(1.0, 0.1, 10),
        intervals=[Interval(0, 0, 9)],
    )
    busy_a = PowerState(
        assertion=busy_assert,
        attributes=PowerAttributes(5.0, 0.1, 6),
        intervals=[Interval(0, 10, 15)],
    )
    busy_b = PowerState(
        assertion=busy_assert,
        attributes=PowerAttributes(9.0, 0.1, 3),
        intervals=[Interval(0, 20, 22)],
    )
    psm = PSM("m0")
    psm.add_state(idle, initial=True)
    psm.add_state(busy_a)
    psm.add_state(busy_b)
    psm.add_transition(Transition(idle.sid, busy_a.sid, p[1]))
    psm.add_transition(Transition(idle.sid, busy_b.sid, p[1]))
    psm.add_transition(Transition(busy_a.sid, idle.sid, p[0]))

    other = PSM("m1")
    lone = PowerState(
        assertion=idle_assert,
        attributes=PowerAttributes(1.1, 0.1, 4),
        intervals=[Interval(1, 0, 3)],
    )
    other.add_state(lone, initial=True)
    return p, psm, other, (idle, busy_a, busy_b, lone)


class TestConstruction:
    def test_state_universe(self):
        p, psm, other, states = build_set()
        hmm = PsmHmm([psm, other])
        assert len(hmm.state_ids) == 4

    def test_transition_matrix_rows_normalised(self):
        p, psm, other, states = build_set()
        hmm = PsmHmm([psm, other])
        sums = hmm.A.sum(axis=1)
        for value in sums:
            assert value == pytest.approx(1.0) or value == 0.0

    def test_transition_counts(self):
        p, psm, other, (idle, busy_a, busy_b, lone) = build_set()
        hmm = PsmHmm([psm, other])
        i = hmm.index_of(idle.sid)
        assert hmm.A[i, hmm.index_of(busy_a.sid)] == pytest.approx(0.5)
        assert hmm.A[i, hmm.index_of(busy_b.sid)] == pytest.approx(0.5)

    def test_observation_matrix(self):
        p, psm, other, (idle, busy_a, busy_b, lone) = build_set()
        hmm = PsmHmm([psm, other])
        row = hmm.B[hmm.index_of(idle.sid)]
        column = hmm.observation_index(idle.assertion)
        assert row[column] == pytest.approx(1.0)

    def test_observation_multiplicity_from_join(self):
        p, psm, other, (idle, busy_a, busy_b, lone) = build_set()
        choice = ChoiceAssertion(
            [idle.assertion, idle.assertion, busy_a.assertion]
        )
        merged = PowerState(
            assertion=choice,
            attributes=PowerAttributes(1.0, 0.1, 4),
            intervals=[Interval(0, 0, 3)],
        )
        solo = PSM("m2")
        solo.add_state(merged, initial=True)
        hmm = PsmHmm([solo])
        row = hmm.B[hmm.index_of(merged.sid)]
        idle_col = hmm.observation_index(idle.assertion)
        busy_col = hmm.observation_index(busy_a.assertion)
        assert row[idle_col] == pytest.approx(2 / 3)
        assert row[busy_col] == pytest.approx(1 / 3)

    def test_pi_from_interval_starts(self):
        p, psm, other, (idle, busy_a, busy_b, lone) = build_set()
        hmm = PsmHmm([psm, other])
        # idle (trace 0) and lone (trace 1) both start at instant 0
        assert hmm.pi[hmm.index_of(idle.sid)] == pytest.approx(0.5)
        assert hmm.pi[hmm.index_of(lone.sid)] == pytest.approx(0.5)
        assert hmm.pi[hmm.index_of(busy_a.sid)] == 0.0


class TestFiltering:
    def test_initial_belief_is_pi(self):
        p, psm, other, _ = build_set()
        hmm = PsmHmm([psm, other])
        assert np.allclose(hmm.initial_belief(), hmm.pi)

    def test_filter_step_propagates_and_weights(self):
        p, psm, other, (idle, busy_a, busy_b, lone) = build_set()
        hmm = PsmHmm([psm, other])
        belief = hmm.belief_for_state(idle.sid)
        after = hmm.filter_step(belief, busy_a.assertion)
        assert after[hmm.index_of(busy_a.sid)] > 0
        assert after.sum() == pytest.approx(1.0)

    def test_filter_step_unknown_symbol_predicts_only(self):
        p, psm, other, (idle, busy_a, busy_b, lone) = build_set()
        hmm = PsmHmm([psm, other])
        belief = hmm.belief_for_state(idle.sid)
        after = hmm.filter_step(belief, None)
        assert after.sum() == pytest.approx(1.0)

    def test_best_candidate_prefers_probable(self):
        p, psm, other, (idle, busy_a, busy_b, lone) = build_set()
        hmm = PsmHmm([psm, other])
        hmm.A[hmm.index_of(idle.sid), hmm.index_of(busy_a.sid)] = 0.8
        hmm.A[hmm.index_of(idle.sid), hmm.index_of(busy_b.sid)] = 0.2
        belief = hmm.belief_for_state(idle.sid)
        best = hmm.best_candidate(belief, [busy_a.sid, busy_b.sid])
        assert best == busy_a.sid

    def test_best_candidate_empty(self):
        p, psm, other, _ = build_set()
        hmm = PsmHmm([psm, other])
        assert hmm.best_candidate(hmm.initial_belief(), []) is None


class TestBanTransition:
    def test_ban_zeroes_and_renormalises(self):
        p, psm, other, (idle, busy_a, busy_b, lone) = build_set()
        hmm = PsmHmm([psm, other])
        hmm.ban_transition(idle.sid, busy_a.sid)
        i = hmm.index_of(idle.sid)
        assert hmm.A[i, hmm.index_of(busy_a.sid)] == 0.0
        assert hmm.A[i, hmm.index_of(busy_b.sid)] == pytest.approx(1.0)

    def test_ban_last_transition_leaves_zero_row(self):
        p, psm, other, (idle, busy_a, busy_b, lone) = build_set()
        hmm = PsmHmm([psm, other])
        hmm.ban_transition(idle.sid, busy_a.sid)
        hmm.ban_transition(idle.sid, busy_b.sid)
        assert hmm.A[hmm.index_of(idle.sid)].sum() == 0.0
