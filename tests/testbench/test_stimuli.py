"""Tests for the stimulus builder."""

import pytest

from repro.testbench.stimuli import StimulusBuilder, total_cycles


class TestBuilder:
    def test_cycle_applies_defaults_and_overrides(self):
        tb = StimulusBuilder({"a": 0, "b": 1})
        tb.cycle(a=5)
        stimulus = tb.build()
        assert stimulus == [{"a": 5, "b": 1}]

    def test_hold_repeats(self):
        tb = StimulusBuilder({"a": 0})
        tb.hold(3, a=2)
        assert tb.build() == [{"a": 2}] * 3

    def test_hold_zero_is_noop(self):
        tb = StimulusBuilder({"a": 0})
        tb.hold(0)
        assert tb.build() == []

    def test_len_tracks_cycles(self):
        tb = StimulusBuilder({"a": 0})
        tb.cycle().cycle()
        assert len(tb) == 2

    def test_build_returns_copy(self):
        tb = StimulusBuilder({"a": 0})
        tb.cycle()
        first = tb.build()
        tb.cycle()
        assert len(first) == 1

    def test_deterministic_per_seed(self):
        a = StimulusBuilder({"x": 0}, seed=42)
        b = StimulusBuilder({"x": 0}, seed=42)
        assert [a.rand_bits(32) for _ in range(5)] == [
            b.rand_bits(32) for _ in range(5)
        ]

    def test_rand_bits_narrow(self):
        tb = StimulusBuilder({}, seed=1)
        for _ in range(50):
            assert 0 <= tb.rand_bits(4) < 16

    def test_rand_bits_wide(self):
        tb = StimulusBuilder({}, seed=1)
        values = [tb.rand_bits(128) for _ in range(20)]
        assert all(0 <= v < (1 << 128) for v in values)
        assert any(v >= (1 << 64) for v in values)

    def test_choice(self):
        tb = StimulusBuilder({}, seed=0)
        for _ in range(20):
            assert tb.choice([1, 2, 3]) in (1, 2, 3)

    def test_maybe_bounds(self):
        tb = StimulusBuilder({}, seed=0)
        assert not any(tb.maybe(0.0) for _ in range(20))
        assert all(tb.maybe(1.0) for _ in range(20))

    def test_total_cycles(self):
        tb = StimulusBuilder({"a": 0})
        tb.hold(4)
        assert total_cycles(tb.build()) == 4
