"""Tests for the per-IP testbench suites."""

import pytest

from repro.testbench import (
    AES_LATENCY,
    BENCHMARKS,
    CAMELLIA_LATENCY,
    aes_long_ts,
    aes_short_ts,
    camellia_long_ts,
    camellia_short_ts,
    default_flow_config,
    multsum_long_ts,
    multsum_short_ts,
    ram_long_ts,
    ram_short_ts,
)


class TestRegistry:
    def test_four_benchmarks(self):
        assert list(BENCHMARKS) == ["RAM", "MultSum", "AES", "Camellia"]

    def test_specs_are_complete(self):
        for spec in BENCHMARKS.values():
            assert callable(spec.short_ts)
            assert callable(spec.long_ts)
            assert spec.module_class.NAME == spec.name

    def test_flow_config_factory(self):
        config = default_flow_config()
        assert config.apply_simplify and config.apply_join


@pytest.mark.parametrize("name", list(BENCHMARKS))
class TestStimulusValidity:
    def test_short_ts_inputs_valid(self, name):
        spec = BENCHMARKS[name]
        module = spec.module_class()
        for row in spec.short_ts():
            module.check_inputs(row)

    def test_long_ts_respects_cycle_budget(self, name):
        spec = BENCHMARKS[name]
        stimulus = spec.long_ts(1500)
        assert len(stimulus) == 1500
        module = spec.module_class()
        for row in stimulus[:100]:
            module.check_inputs(row)

    def test_deterministic_per_seed(self, name):
        spec = BENCHMARKS[name]
        assert spec.short_ts() == spec.short_ts()


class TestSuiteShapes:
    def test_ram_short_covers_reads_and_writes(self):
        stimulus = ram_short_ts()
        writes = sum(1 for r in stimulus if r["en"] and r["we"])
        reads = sum(1 for r in stimulus if r["en"] and not r["we"])
        idles = sum(1 for r in stimulus if not r["en"])
        assert writes > 100 and reads > 100 and idles > 10

    def test_multsum_short_has_clear_pulses(self):
        stimulus = multsum_short_ts()
        assert sum(r["clear"] for r in stimulus) > 5

    def test_cipher_short_mixes_modes(self):
        for build in (aes_short_ts, camellia_short_ts):
            stimulus = build()
            assert any(r["load_key"] for r in stimulus)
            assert any(r["start"] and r["decrypt"] for r in stimulus)
            assert any(r["start"] and not r["decrypt"] for r in stimulus)

    def test_aes_short_covers_clock_gating(self):
        assert any(not r["en"] for r in aes_short_ts())

    def test_camellia_short_lacks_clock_gating(self):
        """The coverage gap that produces the paper's Camellia WSP."""
        assert all(r["en"] for r in camellia_short_ts())

    def test_long_suites_include_gating(self):
        assert any(not r["en"] for r in aes_long_ts(4000))
        assert any(not r["en"] for r in camellia_long_ts(4000))

    def test_cipher_inputs_held_during_busy(self):
        stimulus = aes_short_ts()
        for i, row in enumerate(stimulus):
            if row["start"]:
                window = stimulus[i : i + AES_LATENCY + 1]
                assert all(r["data"] == row["data"] for r in window)

    def test_camellia_latency_constant(self):
        assert CAMELLIA_LATENCY == 20
        assert AES_LATENCY == 10


class TestGatingParameter:
    def test_gating_can_be_disabled(self):
        gated = camellia_long_ts(4000, include_gating=True)
        clean = camellia_long_ts(4000, include_gating=False)
        assert any(not r["en"] for r in gated)
        assert all(r["en"] for r in clean)

    def test_aes_gating_parameter(self):
        clean = aes_long_ts(4000, include_gating=False)
        assert all(r["en"] for r in clean)
