"""API-quality gates: documentation coverage and import hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
]


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = []
        for name in MODULES:
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                undocumented.append(name)
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for name in MODULES:
            module = importlib.import_module(name)
            for attr_name, attr in vars(module).items():
                if attr_name.startswith("_"):
                    continue
                if getattr(attr, "__module__", None) != name:
                    continue
                if inspect.isclass(attr) or inspect.isfunction(attr):
                    if not (attr.__doc__ or "").strip():
                        undocumented.append(f"{name}.{attr_name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        """Every public method carries a docstring, directly or inherited
        from the base method it overrides."""

        def inherited_doc(cls, method_name):
            for base in cls.__mro__[1:]:
                base_method = base.__dict__.get(method_name)
                if base_method is not None and (
                    getattr(base_method, "__doc__", "") or ""
                ).strip():
                    return True
            return False

        undocumented = []
        for name in MODULES:
            module = importlib.import_module(name)
            for attr in vars(module).values():
                if not inspect.isclass(attr):
                    continue
                if getattr(attr, "__module__", None) != name:
                    continue
                if attr.__name__.startswith("_"):
                    continue
                for method_name, method in vars(attr).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if (method.__doc__ or "").strip():
                        continue
                    if inherited_doc(attr, method_name):
                        continue
                    undocumented.append(
                        f"{name}.{attr.__name__}.{method_name}"
                    )
        assert undocumented == []


class TestExports:
    def test_all_exports_resolve(self):
        for name in MODULES:
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                assert hasattr(module, symbol), f"{name}.{symbol}"

    def test_top_level_api_imports(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol), symbol
