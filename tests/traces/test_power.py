"""Tests for power traces."""

import numpy as np
import pytest

from repro.traces.power import PowerTrace


@pytest.fixture
def trace():
    return PowerTrace([1.0, 2.0, 3.0, 4.0, 5.0], name="p")


class TestConstruction:
    def test_values_immutable(self, trace):
        with pytest.raises(ValueError):
            trace.values[0] = 9.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace([1.0, -0.1])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace(np.zeros((2, 2)))

    def test_length_and_indexing(self, trace):
        assert len(trace) == 5
        assert trace[2] == 3.0

    def test_iteration(self, trace):
        assert list(trace) == [1.0, 2.0, 3.0, 4.0, 5.0]


class TestAttributes:
    def test_attributes_full_interval(self, trace):
        mu, sigma, n = trace.attributes(0, 4)
        assert mu == pytest.approx(3.0)
        assert sigma == pytest.approx(np.std([1, 2, 3, 4, 5]))
        assert n == 5

    def test_attributes_single_instant(self, trace):
        mu, sigma, n = trace.attributes(2, 2)
        assert (mu, sigma, n) == (3.0, 0.0, 1)

    def test_segment_inclusive(self, trace):
        assert trace.segment(1, 3).tolist() == [2.0, 3.0, 4.0]

    def test_bad_interval(self, trace):
        with pytest.raises(IndexError):
            trace.attributes(3, 2)
        with pytest.raises(IndexError):
            trace.attributes(0, 5)
        with pytest.raises(IndexError):
            trace.attributes(-1, 2)

    def test_mean(self, trace):
        assert trace.mean() == pytest.approx(3.0)

    def test_mean_empty(self):
        assert PowerTrace([]).mean() == 0.0


class TestDerived:
    def test_slice(self, trace):
        part = trace.slice(2, 4)
        assert list(part) == [3.0, 4.0, 5.0]

    def test_concat(self, trace):
        joined = trace.concat(trace)
        assert len(joined) == 10
        assert joined[5] == 1.0

    def test_noise_deterministic(self, trace):
        a = trace.with_noise(0.1, seed=42)
        b = trace.with_noise(0.1, seed=42)
        assert np.allclose(a.values, b.values)

    def test_noise_clipped_at_zero(self):
        trace = PowerTrace([0.001] * 100)
        noisy = trace.with_noise(1.0, seed=0)
        assert np.all(noisy.values >= 0.0)

    def test_noise_changes_values(self, trace):
        noisy = trace.with_noise(0.5, seed=1)
        assert not np.allclose(noisy.values, trace.values)
