"""Tests for functional traces."""

import numpy as np
import pytest

from repro.traces.functional import FunctionalTrace, popcount
from repro.traces.variables import bool_in, int_in, int_out


@pytest.fixture
def specs():
    return [bool_in("en"), int_in("data", 8), int_out("q", 8)]


@pytest.fixture
def trace(specs):
    return FunctionalTrace(
        specs,
        {"en": [0, 1, 1], "data": [0, 5, 7], "q": [0, 0, 5]},
        name="t",
    )


class TestConstruction:
    def test_empty_variables_rejected(self):
        with pytest.raises(ValueError):
            FunctionalTrace([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FunctionalTrace([bool_in("a"), bool_in("a")])

    def test_ragged_columns_rejected(self, specs):
        with pytest.raises(ValueError):
            FunctionalTrace(
                specs, {"en": [0, 1], "data": [0], "q": [0, 0]}
            )

    def test_missing_column_rejected(self, specs):
        with pytest.raises(ValueError):
            FunctionalTrace(specs, {"en": [0], "data": [0]})

    def test_empty_trace_allowed(self, specs):
        assert len(FunctionalTrace(specs)) == 0

    def test_length(self, trace):
        assert len(trace) == 3


class TestAppend:
    def test_append_row(self, specs):
        trace = FunctionalTrace(specs)
        trace.append({"en": 1, "data": 3, "q": 0})
        assert len(trace) == 1
        assert trace.at(0) == {"en": 1, "data": 3, "q": 0}

    def test_append_missing_variable(self, specs):
        trace = FunctionalTrace(specs)
        with pytest.raises(KeyError):
            trace.append({"en": 1, "data": 3})

    def test_append_out_of_range(self, specs):
        trace = FunctionalTrace(specs)
        with pytest.raises(ValueError):
            trace.append({"en": 1, "data": 256, "q": 0})

    def test_extend(self, specs):
        trace = FunctionalTrace(specs)
        trace.extend(
            [{"en": 0, "data": 0, "q": 0}, {"en": 1, "data": 1, "q": 1}]
        )
        assert len(trace) == 2

    def test_extend_accepts_generator(self, specs):
        trace = FunctionalTrace(specs)
        trace.extend(
            {"en": i % 2, "data": i, "q": i} for i in range(10)
        )
        assert len(trace) == 10
        assert trace.at(9) == {"en": 1, "data": 9, "q": 9}

    def test_extend_is_atomic_on_bad_row(self, specs):
        trace = FunctionalTrace(specs)
        trace.append({"en": 0, "data": 0, "q": 0})
        with pytest.raises(KeyError):
            trace.extend(
                [{"en": 1, "data": 1, "q": 1}, {"en": 1, "data": 2}]
            )
        # the valid leading row must not have been committed
        assert len(trace) == 1

    def test_extend_is_atomic_on_out_of_range_value(self, specs):
        trace = FunctionalTrace(specs)
        with pytest.raises(ValueError):
            trace.extend(
                [{"en": 0, "data": 0, "q": 0}, {"en": 0, "data": 256, "q": 0}]
            )
        assert len(trace) == 0

    def test_extend_invalidates_frozen_column_once(self, specs):
        trace = FunctionalTrace(specs)
        trace.append({"en": 0, "data": 0, "q": 0})
        assert trace.column("data").tolist() == [0]
        trace.extend(
            [{"en": 1, "data": 7, "q": 0}, {"en": 1, "data": 8, "q": 7}]
        )
        assert trace.column("data").tolist() == [0, 7, 8]

    def test_extend_empty_keeps_cache(self, specs):
        trace = FunctionalTrace(specs)
        trace.append({"en": 0, "data": 0, "q": 0})
        before = trace.column("data")
        trace.extend([])
        assert trace.column("data") is before

    def test_append_invalidates_frozen_column(self, specs):
        trace = FunctionalTrace(specs)
        trace.append({"en": 0, "data": 0, "q": 0})
        first = trace.column("data")
        assert len(first) == 1
        trace.append({"en": 1, "data": 9, "q": 0})
        assert len(trace.column("data")) == 2


class TestAccess:
    def test_at_returns_full_row(self, trace):
        assert trace.at(1) == {"en": 1, "data": 5, "q": 0}

    def test_at_out_of_range(self, trace):
        with pytest.raises(IndexError):
            trace.at(3)
        with pytest.raises(IndexError):
            trace.at(-1)

    def test_rows_iterates_all(self, trace):
        rows = list(trace.rows())
        assert len(rows) == 3
        assert rows[2]["q"] == 5

    def test_column_is_readonly(self, trace):
        column = trace.column("data")
        with pytest.raises(ValueError):
            column[0] = 9

    def test_column_values(self, trace):
        assert trace.column("data").tolist() == [0, 5, 7]

    def test_inputs_outputs_split(self, trace):
        assert [v.name for v in trace.inputs] == ["en", "data"]
        assert [v.name for v in trace.outputs] == ["q"]

    def test_input_vector(self, trace):
        assert trace.input_vector(2) == {"en": 1, "data": 7}

    def test_spec_lookup(self, trace):
        assert trace.spec("data").width == 8

    def test_contains(self, trace):
        assert "data" in trace
        assert "nope" not in trace


class TestWideVariables:
    def test_128_bit_column_roundtrip(self):
        specs = [int_in("key", 128)]
        value = (1 << 127) | 5
        trace = FunctionalTrace(specs, {"key": [value, 0]})
        assert trace.at(0)["key"] == value
        assert trace.column("key").dtype == object

    def test_narrow_column_is_int64(self, trace):
        assert trace.column("data").dtype == np.int64

    def test_wide_hamming(self):
        specs = [int_in("key", 128)]
        a = (1 << 127) | 1
        trace = FunctionalTrace(specs, {"key": [a, a ^ 0b111]})
        assert trace.hamming_distances().tolist() == [0, 3]


class TestSliceConcat:
    def test_slice_inclusive(self, trace):
        part = trace.slice(1, 2)
        assert len(part) == 2
        assert part.at(0)["data"] == 5

    def test_slice_bad_interval(self, trace):
        with pytest.raises(IndexError):
            trace.slice(2, 1)
        with pytest.raises(IndexError):
            trace.slice(0, 3)

    def test_concat(self, trace):
        joined = trace.concat(trace)
        assert len(joined) == 6
        assert joined.at(3) == trace.at(0)

    def test_concat_mismatched_variables(self, trace):
        other = FunctionalTrace([bool_in("x")], {"x": [0]})
        with pytest.raises(ValueError):
            trace.concat(other)


class TestHamming:
    def test_first_instant_is_zero(self, trace):
        assert trace.hamming_distances()[0] == 0

    def test_counts_bit_flips_across_all_variables(self, trace):
        hd = trace.hamming_distances()
        # 0->1 (en), 0->5 (data: 2 bits), 0->0 (q) => 3
        assert hd[1] == 3
        # en same, 5->7 (1 bit), 0->5 (2 bits) => 3
        assert hd[2] == 3

    def test_selected_variables_only(self, trace):
        hd = trace.hamming_distances(["data"])
        assert hd.tolist() == [0, 2, 1]


class TestPopcount:
    def test_popcount_vector(self):
        values = np.array([0, 1, 3, 255], dtype=np.int64)
        assert popcount(values).tolist() == [0, 1, 2, 8]

    def test_popcount_empty(self):
        assert popcount(np.array([], dtype=np.int64)).tolist() == []
