"""Tests for trace serialisation."""

import numpy as np
import pytest

from repro.traces.functional import FunctionalTrace
from repro.traces.io import (
    load_functional_csv,
    load_power_csv,
    load_training_pair,
    save_functional_csv,
    save_power_csv,
    save_training_pair,
)
from repro.traces.power import PowerTrace
from repro.traces.variables import bool_in, int_in, int_out


@pytest.fixture
def trace():
    specs = [bool_in("en"), int_in("key", 128), int_out("q", 8)]
    big = (1 << 127) | 3
    return FunctionalTrace(
        specs,
        {"en": [0, 1], "key": [big, 0], "q": [7, 255]},
        name="io-test",
    )


class TestFunctionalCsv:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        save_functional_csv(trace, path)
        loaded = load_functional_csv(path)
        assert loaded.variable_names == trace.variable_names
        assert loaded.at(0) == trace.at(0)
        assert loaded.at(1) == trace.at(1)
        assert loaded.name == "io-test"

    def test_sidecar_preserves_specs(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        save_functional_csv(trace, path)
        loaded = load_functional_csv(path)
        assert loaded.spec("key").width == 128
        assert loaded.spec("q").direction == "out"

    def test_header_mismatch_detected(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        save_functional_csv(trace, path)
        text = path.read_text().replace("en,", "zz,")
        path.write_text(text)
        with pytest.raises(ValueError):
            load_functional_csv(path)


class TestPowerCsv:
    def test_round_trip(self, tmp_path):
        power = PowerTrace([0.125, 3.0, 1e-9])
        path = tmp_path / "p.csv"
        save_power_csv(power, path)
        loaded = load_power_csv(path)
        assert np.allclose(loaded.values, power.values)

    def test_bad_header_detected(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("watt\n1.0\n")
        with pytest.raises(ValueError):
            load_power_csv(path)


class TestTrainingPair:
    def test_round_trip(self, trace, tmp_path):
        power = PowerTrace([1.0, 2.0])
        func_path, power_path = save_training_pair(
            trace, power, tmp_path / "pair"
        )
        assert func_path.exists() and power_path.exists()
        loaded_trace, loaded_power = load_training_pair(tmp_path / "pair")
        assert len(loaded_trace) == len(loaded_power) == 2

    def test_length_mismatch_rejected(self, trace, tmp_path):
        with pytest.raises(ValueError):
            save_training_pair(trace, PowerTrace([1.0]), tmp_path / "pair")
