"""Tests for trace serialisation."""

import numpy as np
import pytest

from repro.traces.functional import FunctionalTrace
from repro.traces.io import (
    BINARY_MAGIC,
    BinaryTraceReader,
    load_functional_bin,
    load_functional_csv,
    load_power_bin,
    load_power_csv,
    load_training_bin,
    load_training_pair,
    save_functional_bin,
    save_functional_csv,
    save_power_bin,
    save_power_csv,
    save_training_bin,
    save_training_pair,
    window_bounds,
)
from repro.traces.power import PowerTrace
from repro.traces.variables import bool_in, int_in, int_out


@pytest.fixture
def trace():
    specs = [bool_in("en"), int_in("key", 128), int_out("q", 8)]
    big = (1 << 127) | 3
    return FunctionalTrace(
        specs,
        {"en": [0, 1], "key": [big, 0], "q": [7, 255]},
        name="io-test",
    )


class TestFunctionalCsv:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        save_functional_csv(trace, path)
        loaded = load_functional_csv(path)
        assert loaded.variable_names == trace.variable_names
        assert loaded.at(0) == trace.at(0)
        assert loaded.at(1) == trace.at(1)
        assert loaded.name == "io-test"

    def test_sidecar_preserves_specs(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        save_functional_csv(trace, path)
        loaded = load_functional_csv(path)
        assert loaded.spec("key").width == 128
        assert loaded.spec("q").direction == "out"

    def test_header_mismatch_detected(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        save_functional_csv(trace, path)
        text = path.read_text().replace("en,", "zz,")
        path.write_text(text)
        with pytest.raises(ValueError):
            load_functional_csv(path)


class TestPowerCsv:
    def test_round_trip(self, tmp_path):
        power = PowerTrace([0.125, 3.0, 1e-9])
        path = tmp_path / "p.csv"
        save_power_csv(power, path)
        loaded = load_power_csv(path)
        assert np.allclose(loaded.values, power.values)

    def test_bad_header_detected(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("watt\n1.0\n")
        with pytest.raises(ValueError):
            load_power_csv(path)


class TestTrainingPair:
    def test_round_trip(self, trace, tmp_path):
        power = PowerTrace([1.0, 2.0])
        func_path, power_path = save_training_pair(
            trace, power, tmp_path / "pair"
        )
        assert func_path.exists() and power_path.exists()
        loaded_trace, loaded_power = load_training_pair(tmp_path / "pair")
        assert len(loaded_trace) == len(loaded_power) == 2

    def test_length_mismatch_rejected(self, trace, tmp_path):
        with pytest.raises(ValueError):
            save_training_pair(trace, PowerTrace([1.0]), tmp_path / "pair")


@pytest.fixture
def wide_trace():
    specs = [bool_in("en"), int_in("key", 128), int_in("bus", 130), int_out("q", 8)]
    rows = 257
    rng = np.random.default_rng(17)
    key_values = [
        int(rng.integers(0, 1 << 62)) | (int(rng.integers(0, 1 << 62)) << 64)
        for _ in range(rows)
    ]
    bus_values = [
        (1 << 129) | int(rng.integers(0, 1 << 62)) for _ in range(rows)
    ]
    return FunctionalTrace(
        specs,
        {
            "en": [int(v) for v in rng.integers(0, 2, rows)],
            "key": key_values,
            "bus": bus_values,
            "q": [int(v) for v in rng.integers(0, 256, rows)],
        },
        name="bin-test",
    )


@pytest.fixture
def wide_power():
    rng = np.random.default_rng(23)
    return PowerTrace(np.abs(rng.normal(3.0, 1.0, 257)), name="bin-test")


class TestBinaryContainer:
    def test_functional_round_trip(self, wide_trace, tmp_path):
        path = tmp_path / "t.npt"
        save_functional_bin(wide_trace, path)
        loaded = load_functional_bin(path)
        assert loaded.variable_names == wide_trace.variable_names
        assert loaded.name == wide_trace.name
        assert len(loaded) == len(wide_trace)
        for k in (0, 1, 128, 256):
            assert loaded.at(k) == wide_trace.at(k)

    def test_wide_columns_exact(self, wide_trace, tmp_path):
        path = tmp_path / "t.npt"
        save_functional_bin(wide_trace, path)
        loaded = load_functional_bin(path)
        assert list(loaded.column("key")) == list(wide_trace.column("key"))
        assert list(loaded.column("bus")) == list(wide_trace.column("bus"))

    def test_power_round_trip_bit_exact(self, wide_power, tmp_path):
        path = tmp_path / "p.npt"
        save_power_bin(wide_power, path)
        loaded = load_power_bin(path)
        assert (
            loaded.values.tobytes() == wide_power.values.tobytes()
        )

    def test_training_round_trip(self, wide_trace, wide_power, tmp_path):
        path = tmp_path / "pair.npt"
        save_training_bin(wide_trace, wide_power, path)
        functional, power = load_training_bin(path)
        assert len(functional) == len(power) == len(wide_trace)
        assert functional.at(42) == wide_trace.at(42)
        assert power.values.tobytes() == wide_power.values.tobytes()

    def test_length_mismatch_rejected(self, wide_trace, tmp_path):
        with pytest.raises(ValueError):
            save_training_bin(
                wide_trace, PowerTrace([1.0]), tmp_path / "bad.npt"
            )

    def test_csv_and_binary_agree(self, wide_trace, wide_power, tmp_path):
        save_training_pair(wide_trace, wide_power, tmp_path / "pair")
        csv_trace, csv_power = load_training_pair(tmp_path / "pair")
        save_training_bin(wide_trace, wide_power, tmp_path / "pair.npt")
        bin_trace, bin_power = load_training_bin(tmp_path / "pair.npt")
        for k in range(0, len(wide_trace), 37):
            assert bin_trace.at(k) == csv_trace.at(k)
        assert bin_power.values.tobytes() == csv_power.values.tobytes()


class TestBinaryReader:
    def test_chunked_streaming_reconstructs_rows(
        self, wide_trace, wide_power, tmp_path
    ):
        path = tmp_path / "pair.npt"
        save_training_bin(wide_trace, wide_power, path)
        reader = BinaryTraceReader(path)
        seen = 0
        for start, functional, power in reader.chunks(100):
            assert start == seen
            assert len(functional) == len(power)
            for k in range(len(functional)):
                assert functional.at(k) == wide_trace.at(start + k)
            assert (
                power.tobytes()
                == wide_power.values[start : start + len(power)].tobytes()
            )
            seen += len(functional)
        assert seen == len(wide_trace)

    def test_windowed_column_reads(self, wide_trace, tmp_path):
        path = tmp_path / "t.npt"
        save_functional_bin(wide_trace, path)
        reader = BinaryTraceReader(path)
        assert (
            reader.column_values("q", 10, 5)
            == wide_trace.column("q")[10:15].tolist()
        )
        assert (
            reader.column_values("key", 250, 7)
            == list(wide_trace.column("key")[250:257])
        )
        with pytest.raises(IndexError):
            reader.column_values("q", 250, 100)

    def test_memmaps_match(self, wide_trace, wide_power, tmp_path):
        path = tmp_path / "pair.npt"
        save_training_bin(wide_trace, wide_power, path)
        reader = BinaryTraceReader(path)
        assert np.array_equal(
            np.asarray(reader.memmap_power()), wide_power.values
        )
        q = np.asarray(reader.memmap_column("q"))
        assert q.tolist() == wide_trace.column("q").tolist()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.npt"
        path.write_bytes(b"NOTATRACE" + b"\0" * 64)
        with pytest.raises(ValueError):
            BinaryTraceReader(path)

    def test_unsupported_format_rejected(self, wide_trace, tmp_path):
        path = tmp_path / "t.npt"
        save_functional_bin(wide_trace, path)
        raw = path.read_bytes()
        # Same-length version bump keeps the header offsets intact.
        patched = raw.replace(b"psmgen-trace/v1", b"psmgen-trace/v9", 1)
        assert patched != raw
        path.write_bytes(patched)
        with pytest.raises(ValueError):
            BinaryTraceReader(path)

    def test_truncated_block_detected(self, wide_trace, tmp_path):
        path = tmp_path / "t.npt"
        save_functional_bin(wide_trace, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 64])
        with pytest.raises(ValueError):
            BinaryTraceReader(path).column_values("q")

    def test_power_only_container(self, wide_power, tmp_path):
        path = tmp_path / "p.npt"
        save_power_bin(wide_power, path)
        reader = BinaryTraceReader(path)
        assert reader.has_power
        with pytest.raises(ValueError):
            reader.read_functional()


class TestBufferReader:
    """``from_bytes`` + ``view_functional``: the serving ingest path."""

    def test_from_bytes_matches_file_reader(self, wide_trace, tmp_path):
        path = tmp_path / "t.npt"
        save_functional_bin(wide_trace, path)
        reader = BinaryTraceReader.from_bytes(path.read_bytes())
        assert reader.length == len(wide_trace)
        assert (
            reader.column_values("q")
            == wide_trace.column("q").tolist()
        )
        assert (
            reader.column_values("key")
            == list(wide_trace.column("key"))
        )

    def test_view_functional_is_zero_copy_and_read_only(
        self, wide_trace, tmp_path
    ):
        path = tmp_path / "t.npt"
        save_functional_bin(wide_trace, path)
        view = BinaryTraceReader.from_bytes(path.read_bytes())
        trace = view.view_functional()
        assert len(trace) == len(wide_trace)
        for name in ("q", "key"):
            assert (
                list(trace.column(name))
                == list(wide_trace.column(name))
            )
        column = trace.column("q")
        assert not column.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            column[0] = 99

    def test_memoryview_input_accepted(self, wide_trace, tmp_path):
        path = tmp_path / "t.npt"
        save_functional_bin(wide_trace, path)
        reader = BinaryTraceReader.from_bytes(
            memoryview(path.read_bytes())
        )
        assert reader.length == len(wide_trace)

    def test_truncated_buffer_rejected(self, wide_trace, tmp_path):
        path = tmp_path / "t.npt"
        save_functional_bin(wide_trace, path)
        raw = path.read_bytes()
        with pytest.raises(ValueError):
            BinaryTraceReader.from_bytes(raw[:16])
        truncated = BinaryTraceReader.from_bytes(raw[: len(raw) - 64])
        with pytest.raises(ValueError):
            truncated.view_functional()
        with pytest.raises(ValueError):
            BinaryTraceReader.from_bytes(b"NOTATRACE" + b"\0" * 64)


class TestWindowBounds:
    def test_non_dividing_size_has_partial_tail(self):
        assert list(window_bounds(20, 7)) == [(0, 7), (7, 7), (14, 6)]

    def test_exact_division_has_no_tail(self):
        assert list(window_bounds(21, 7)) == [(0, 7), (7, 7), (14, 7)]

    def test_size_larger_than_length_single_window(self):
        assert list(window_bounds(5, 100)) == [(0, 5)]

    def test_zero_length_yields_nothing(self):
        assert list(window_bounds(0, 8)) == []

    def test_size_one_enumerates_instants(self):
        assert list(window_bounds(3, 1)) == [(0, 1), (1, 1), (2, 1)]

    @pytest.mark.parametrize("size", [0, -3])
    def test_invalid_size_rejected(self, size):
        with pytest.raises(ValueError):
            list(window_bounds(10, size))


class TestChunkedWindows:
    """BinaryTraceReader.chunks edge cases for the streaming ingest path."""

    @pytest.fixture
    def pair_path(self, wide_trace, wide_power, tmp_path):
        path = tmp_path / "pair.npt"
        save_training_bin(wide_trace, wide_power, path)
        return path

    def test_final_partial_window(self, pair_path, wide_trace, wide_power):
        # 257 instants in windows of 100 -> 100, 100, 57.
        reader = BinaryTraceReader(pair_path)
        chunks = list(reader.chunks(100))
        assert [(start, len(func)) for start, func, _ in chunks] == [
            (0, 100), (100, 100), (200, 57),
        ]
        for start, func, power in chunks:
            stop = start + len(func)
            for spec in wide_trace.variables:
                assert np.array_equal(
                    func.column(spec.name),
                    wide_trace.column(spec.name)[start:stop],
                )
            assert np.array_equal(power, wide_power.values[start:stop])

    def test_window_larger_than_trace(self, pair_path, wide_trace):
        chunks = list(BinaryTraceReader(pair_path).chunks(10_000))
        assert len(chunks) == 1
        start, func, power = chunks[0]
        assert start == 0
        assert len(func) == len(wide_trace)
        assert len(power) == len(wide_trace)

    def test_dividing_window_no_empty_tail(self, wide_trace, tmp_path):
        # A trace whose length divides the window exactly must not emit
        # a trailing zero-length chunk.
        path = tmp_path / "exact.npt"
        save_functional_bin(wide_trace.slice(0, 199), path)
        chunks = list(BinaryTraceReader(path).chunks(50))
        assert [start for start, _, _ in chunks] == [0, 50, 100, 150]
        assert all(len(func) == 50 for _, func, _ in chunks)

    def test_functional_only_yields_none_power(self, wide_trace, tmp_path):
        path = tmp_path / "func.npt"
        save_functional_bin(wide_trace, path)
        for _, func, power in BinaryTraceReader(path).chunks(64):
            assert power is None
            assert len(func) > 0

    def test_invalid_window_rejected(self, pair_path):
        with pytest.raises(ValueError):
            list(BinaryTraceReader(pair_path).chunks(0))
