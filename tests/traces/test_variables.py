"""Tests for variable specifications."""

import pytest

from repro.traces.variables import (
    VariableSpec,
    bool_in,
    bool_out,
    int_in,
    int_out,
)


class TestVariableSpec:
    def test_basic_construction(self):
        spec = VariableSpec("addr", 8, "in", "int")
        assert spec.name == "addr"
        assert spec.width == 8
        assert spec.is_input and not spec.is_output

    def test_default_is_bool_input(self):
        spec = VariableSpec("en")
        assert spec.kind == "bool"
        assert spec.width == 1
        assert spec.direction == "in"

    def test_output_direction(self):
        spec = VariableSpec("rdata", 32, "out", "int")
        assert spec.is_output and not spec.is_input

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            VariableSpec("")

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            VariableSpec("x", 1, "inout")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            VariableSpec("x", 1, "in", "float")

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            VariableSpec("x", 0, "in", "int")

    def test_wide_bool_rejected(self):
        with pytest.raises(ValueError):
            VariableSpec("x", 2, "in", "bool")

    def test_max_value(self):
        assert VariableSpec("x", 8, "in", "int").max_value == 255
        assert VariableSpec("b").max_value == 1

    def test_max_value_wide(self):
        assert VariableSpec("x", 128, "in", "int").max_value == (1 << 128) - 1

    def test_validate_value_in_range(self):
        spec = VariableSpec("x", 4, "in", "int")
        assert spec.validate_value(15) == 15
        assert spec.validate_value(0) == 0

    def test_validate_value_out_of_range(self):
        spec = VariableSpec("x", 4, "in", "int")
        with pytest.raises(ValueError):
            spec.validate_value(16)
        with pytest.raises(ValueError):
            spec.validate_value(-1)

    def test_validate_value_coerces_to_int(self):
        spec = VariableSpec("x", 4, "in", "int")
        assert spec.validate_value(True) == 1

    def test_frozen(self):
        spec = VariableSpec("x")
        with pytest.raises(AttributeError):
            spec.width = 2


class TestShorthands:
    def test_bool_in(self):
        spec = bool_in("en")
        assert (spec.width, spec.direction, spec.kind) == (1, "in", "bool")

    def test_bool_out(self):
        spec = bool_out("done")
        assert (spec.width, spec.direction, spec.kind) == (1, "out", "bool")

    def test_int_in(self):
        spec = int_in("data", 128)
        assert (spec.width, spec.direction, spec.kind) == (128, "in", "int")

    def test_int_out(self):
        spec = int_out("out", 32)
        assert (spec.width, spec.direction, spec.kind) == (32, "out", "int")
