"""Tests for the co-simulation kernel."""

import pytest

from repro.sysc.kernel import Kernel, Process, SignalBoard


class Producer(Process):
    name = "producer"

    def on_cycle(self, cycle):
        self.board.write("value", cycle * 2)


class Consumer(Process):
    name = "consumer"

    def __init__(self):
        self.seen = []
        self.finished = False

    def on_cycle(self, cycle):
        self.seen.append(self.board.read("value", default=-1))

    def on_finish(self):
        self.finished = True


class TestSignalBoard:
    def test_write_read(self):
        board = SignalBoard()
        board.write("x", 3)
        assert board.read("x") == 3

    def test_default(self):
        assert SignalBoard().read("missing", default=7) == 7

    def test_write_many_and_snapshot(self):
        board = SignalBoard()
        board.write_many({"a": 1, "b": 2})
        assert board.snapshot() == {"a": 1, "b": 2}


class TestKernel:
    def test_processes_run_in_registration_order(self):
        kernel = Kernel()
        kernel.register(Producer())
        consumer = kernel.register(Consumer())
        stats = kernel.run(3)
        # the consumer sees the producer's same-cycle value
        assert consumer.seen == [0, 2, 4]
        assert stats.cycles == 3

    def test_reverse_order_sees_previous_cycle(self):
        kernel = Kernel()
        consumer = kernel.register(Consumer())
        kernel.register(Producer())
        kernel.run(3)
        assert consumer.seen == [-1, 0, 2]

    def test_on_finish_called(self):
        kernel = Kernel()
        consumer = kernel.register(Consumer())
        kernel.run(1)
        assert consumer.finished

    def test_stop_condition(self):
        kernel = Kernel()
        consumer = kernel.register(Consumer())
        stats = kernel.run(100, stop_condition=lambda cycle: cycle >= 4)
        assert stats.cycles == 5

    def test_per_process_times_recorded(self):
        kernel = Kernel()
        kernel.register(Producer())
        stats = kernel.run(10)
        assert "producer" in stats.process_times
        assert stats.process_times["producer"] >= 0.0

    def test_abstract_process(self):
        with pytest.raises(NotImplementedError):
            Process().on_cycle(0)
