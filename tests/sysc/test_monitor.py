"""Tests for the streaming PSM monitor and co-simulation."""

import numpy as np
import pytest

from repro.core.metrics import mre
from repro.power.estimator import run_power_simulation
from repro.sysc.cosim import measure_overhead, simulate_with_psms
from repro.sysc.monitor import StreamingPsmMonitor


@pytest.fixture(scope="module")
def fitted_ram():
    from repro.core.pipeline import PsmFlow
    from repro.testbench import BENCHMARKS

    spec = BENCHMARKS["RAM"]
    reference = run_power_simulation(spec.module_class(), spec.short_ts())
    flow = PsmFlow(spec.flow_config()).fit(
        [reference.trace], [reference.power]
    )
    return spec, flow, reference


class TestStreamingMonitor:
    def test_tracks_training_trace_accurately(self, fitted_ram):
        spec, flow, reference = fitted_ram
        monitor = StreamingPsmMonitor(
            flow.psms, flow.mining.labeler, flow.hmm
        )
        for row in reference.trace.rows():
            monitor.observe(row)
        assert monitor.cycles == len(reference.trace)
        error = mre(np.array(monitor.estimates), reference.power)
        assert error < 10.0

    def test_close_to_batch_simulator(self, fitted_ram):
        spec, flow, reference = fitted_ram
        stimulus = spec.long_ts(1200)
        evaluation = run_power_simulation(spec.module_class(), stimulus)
        batch = flow.estimate(evaluation.trace)
        monitor = StreamingPsmMonitor(
            flow.psms, flow.mining.labeler, flow.hmm
        )
        for row in evaluation.trace.rows():
            monitor.observe(row)
        batch_mre = mre(batch.estimated, evaluation.power)
        stream_mre = mre(np.array(monitor.estimates), evaluation.power)
        # the causal monitor cannot re-attribute, so allow some slack
        assert stream_mre < batch_mre + 10.0

    def test_reset_clears_state(self, fitted_ram):
        spec, flow, reference = fitted_ram
        monitor = StreamingPsmMonitor(
            flow.psms, flow.mining.labeler, flow.hmm
        )
        for row in list(reference.trace.rows())[:50]:
            monitor.observe(row)
        monitor.reset()
        assert monitor.cycles == 0
        assert monitor.estimates == []

    def test_estimates_are_nonnegative(self, fitted_ram):
        spec, flow, reference = fitted_ram
        monitor = StreamingPsmMonitor(
            flow.psms, flow.mining.labeler, flow.hmm
        )
        for row in list(reference.trace.rows())[:200]:
            assert monitor.observe(row) >= 0.0


class TestCosim:
    def test_overhead_report_fields(self, fitted_ram):
        spec, flow, reference = fitted_ram
        stimulus = spec.long_ts(600)
        report = measure_overhead(
            spec.module_class, stimulus, flow, repeats=1
        )
        assert report.ip == "RAM"
        assert report.cycles == 600
        assert report.ip_time > 0
        assert report.cosim_time > 0

    def test_simulate_with_psms_returns_monitor(self, fitted_ram):
        spec, flow, reference = fitted_ram
        stimulus = spec.long_ts(400)
        stats, monitor = simulate_with_psms(
            spec.module_class(), stimulus, 400, flow
        )
        assert stats.cycles == 400
        assert monitor.cycles == 400

    def test_zero_ip_time_overhead(self):
        from repro.sysc.cosim import OverheadReport

        report = OverheadReport(ip="x", cycles=1, ip_time=0.0, cosim_time=1.0)
        assert report.overhead == 0.0
