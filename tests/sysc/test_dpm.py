"""Tests for the DPM exploration layer."""

import pytest

from repro.core.pipeline import PsmFlow
from repro.power.estimator import run_power_simulation
from repro.sysc.dpm import (
    AlwaysOnPolicy,
    DpmPolicy,
    OraclePolicy,
    TimeoutGatePolicy,
    explore_policies,
)
from repro.testbench import AES_LATENCY, BENCHMARKS
from repro.testbench.stimuli import StimulusBuilder


@pytest.fixture(scope="module")
def aes_dpm_setup():
    spec = BENCHMARKS["AES"]
    reference = run_power_simulation(spec.module_class(), spec.short_ts())
    flow = PsmFlow(spec.flow_config()).fit(
        [reference.trace], [reference.power]
    )
    tb = StimulusBuilder({}, seed=3)
    key = tb.rand_bits(128)

    def transaction(data, first=False):
        base = dict(en=1, load_key=0, start=0, decrypt=0, key=key, data=data)
        rows = [dict(base, load_key=1)] if first else []
        rows.append(dict(base, start=1))
        rows += [dict(base)] * (AES_LATENCY + 1)
        return rows

    workload = [
        transaction(tb.rand_bits(128), first=(i == 0)) for i in range(12)
    ]
    idle = dict(en=1, load_key=0, start=0, decrypt=0, key=key, data=0)
    return spec, flow, workload, idle


class TestPolicies:
    def test_always_on_never_gates(self):
        policy = AlwaysOnPolicy()
        assert policy.decide({"done": 1}, wants_work=False)

    def test_oracle_gates_when_idle(self):
        policy = OraclePolicy()
        assert policy.decide({}, wants_work=True)
        assert not policy.decide({}, wants_work=False)

    def test_timeout_counts_idle_done_cycles(self):
        policy = TimeoutGatePolicy(timeout=2)
        policy.reset()
        assert policy.decide({"done": 1}, False)  # idle 1
        assert not policy.decide({"done": 1}, False)  # idle 2 -> gate
        assert policy.decide({"done": 1}, True)  # work arrives -> wake

    def test_timeout_resets_on_activity(self):
        policy = TimeoutGatePolicy(timeout=2)
        policy.reset()
        policy.decide({"done": 1}, False)
        policy.decide({"done": 0}, False)  # busy again
        assert policy.decide({"done": 1}, False)  # only idle 1

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            TimeoutGatePolicy(0)

    def test_abstract_policy(self):
        with pytest.raises(NotImplementedError):
            DpmPolicy().decide({}, True)


class TestExploration:
    def test_all_policies_complete_the_workload(self, aes_dpm_setup):
        spec, flow, workload, idle = aes_dpm_setup
        reports = explore_policies(
            spec.module_class,
            workload,
            idle,
            flow,
            [AlwaysOnPolicy(), TimeoutGatePolicy(3), OraclePolicy()],
        )
        assert all(
            r.completed_operations == len(workload) for r in reports
        )

    def test_gating_saves_psm_estimated_energy(self, aes_dpm_setup):
        spec, flow, workload, idle = aes_dpm_setup
        reports = explore_policies(
            spec.module_class,
            workload,
            idle,
            flow,
            [AlwaysOnPolicy(), OraclePolicy()],
        )
        by_name = {r.policy: r for r in reports}
        assert (
            by_name["oracle"].estimated_energy
            < by_name["always-on"].estimated_energy
        )
        assert by_name["always-on"].gated_fraction == 0.0
        assert by_name["oracle"].gated_fraction > 0.2

    def test_oracle_is_at_least_as_good_as_timeout(self, aes_dpm_setup):
        spec, flow, workload, idle = aes_dpm_setup
        reports = explore_policies(
            spec.module_class,
            workload,
            idle,
            flow,
            [TimeoutGatePolicy(6), OraclePolicy()],
        )
        by_name = {r.policy: r for r in reports}
        assert (
            by_name["oracle"].estimated_energy
            <= by_name["timeout-6"].estimated_energy * 1.02
        )

    def test_report_fields(self, aes_dpm_setup):
        spec, flow, workload, idle = aes_dpm_setup
        (report,) = explore_policies(
            spec.module_class, workload, idle, flow, [AlwaysOnPolicy()]
        )
        assert report.cycles > 0
        assert 0 <= report.gated_fraction <= 1
        assert report.estimated_energy > 0
