"""Acceptance test: zero-downtime hot swap of a streamed bundle.

Publishes a refreshed PSM bundle (atomic ``publish_psms`` replace, the
same primitive ``fit_stream`` uses on drift) underneath a live server
while concurrent ``/v1/estimate`` traffic is in flight, and checks:

* not a single request fails across the swap — every response is 200;
* the registry hot-reloads to the new content digest;
* the compiled fast path is re-lowered against the new digest (a second
  compile miss) and the old compiled form is released (drop counter).
"""

import asyncio
import json
import threading
import time

import pytest

from repro.bench import fit_benchmark
from repro.core.export import publish_psms
from repro.serve.loadgen import http_request_json
from repro.serve.metrics import find_sample, parse_prometheus
from repro.traces.io import functional_trace_to_json

from .test_serve_e2e import ServerHandle, get, offline_estimate

MODEL = "MultSum"
WINDOW = 64
TRAFFIC_THREADS = 4
SWAP_SETTLE_S = 15.0


@pytest.fixture(scope="module")
def fitted_bundle(tmp_path_factory):
    """A fitted MultSum flow, its request windows, and a models dir."""
    root = tmp_path_factory.mktemp("hotswap-models")
    fitted = fit_benchmark(MODEL)
    trace = fitted.short_ref.trace
    windows = [
        functional_trace_to_json(
            trace.slice(start, min(start + WINDOW - 1, len(trace) - 1))
        )
        for start in range(0, len(trace), WINDOW)
    ]
    return root, fitted, windows


class Traffic:
    """Continuous /v1/estimate traffic from background threads."""

    def __init__(self, port, windows):
        self.port = port
        self.windows = windows
        self.stop = threading.Event()
        self.results = []  # (status, body) tuples, appended under lock
        self._lock = threading.Lock()
        self.threads = [
            threading.Thread(target=self._run, args=(k,), daemon=True)
            for k in range(TRAFFIC_THREADS)
        ]

    def _run(self, worker):
        k = worker
        while not self.stop.is_set():
            index = k % len(self.windows)
            body = {"model": MODEL, "trace": self.windows[index]}
            status, _headers, raw = asyncio.run(
                http_request_json(
                    "127.0.0.1", self.port, "POST", "/v1/estimate",
                    body, timeout=60.0,
                )
            )
            with self._lock:
                self.results.append((status, raw, index))
            k += 1

    def __enter__(self):
        for thread in self.threads:
            thread.start()
        return self

    def __exit__(self, *exc_info):
        self.stop.set()
        for thread in self.threads:
            thread.join(60)


def served_version(port):
    status, _headers, raw = get(port, "/v1/models")
    assert status == 200
    rows = {row["name"]: row for row in json.loads(raw)["models"]}
    return rows[MODEL]["version"]


class TestHotSwap:
    def test_zero_downtime_swap_relowers_compiled(self, fitted_bundle):
        root, fitted, windows = fitted_bundle
        variables = fitted.short_ref.trace.variables

        # v1: the equivalence-bundle shape fit_stream publishes (no
        # stage reports).  v2 carries the stage reports, so its bytes —
        # and content digest — differ while the PSMs stay identical,
        # which keeps every in-flight estimate bit-for-bit checkable.
        v1 = publish_psms(
            fitted.flow.psms, root / f"{MODEL}.json", variables=variables
        )

        with ServerHandle(root, max_queue=64, max_batch=8) as handle:
            port = handle.port
            # Prime: load + lower v1 before traffic starts.
            status, _h, _b = asyncio.run(
                http_request_json(
                    "127.0.0.1", port, "POST", "/v1/estimate",
                    {"model": MODEL, "trace": windows[0]}, timeout=120.0,
                )
            )
            assert status == 200
            assert served_version(port) == v1

            with Traffic(port, windows) as traffic:
                # Let some pre-swap traffic through, then swap.
                deadline = time.monotonic() + SWAP_SETTLE_S
                while (
                    len(traffic.results) < 4
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.05)

                v2 = publish_psms(
                    fitted.flow.psms,
                    root / f"{MODEL}.json",
                    stage_reports=fitted.flow.report.stages,
                    variables=variables,
                )
                assert v2 != v1

                # The registry notices the replaced file on a later
                # request (freshness fast lane may defer it briefly).
                while time.monotonic() < deadline:
                    if served_version(port) == v2:
                        break
                    time.sleep(0.1)
                assert served_version(port) == v2

                # Keep traffic flowing against the swapped bundle.
                post_swap_floor = len(traffic.results) + 4
                while (
                    len(traffic.results) < post_swap_floor
                    and time.monotonic() < deadline + 5.0
                ):
                    time.sleep(0.05)

            status, _h, metrics_raw = get(port, "/metrics")
            assert status == 200

        # (a) zero failed requests across the swap.
        assert traffic.results, "traffic never got a response in"
        statuses = [status for status, _raw, _i in traffic.results]
        assert statuses.count(200) == len(statuses), (
            f"non-200 during hot swap: {sorted(set(statuses))}"
        )

        # (b) every answer — before and after the swap — matches the
        # offline estimate of the same PSMs (the swapped bundle holds
        # the same PSMs, so one reference covers both versions).
        reference = [
            offline_estimate(root / f"{MODEL}.json", window)
            for window in windows
        ]
        step = max(1, len(traffic.results) // 16)
        for _status, raw, index in traffic.results[::step]:
            payload = json.loads(raw)
            assert payload["estimated"] == [
                float(v) for v in reference[index].estimated.values
            ]

        # (c) the compiled cache was re-lowered for the new digest and
        # the stale compiled form was released.
        samples = parse_prometheus(metrics_raw.decode("utf-8"))
        assert find_sample(samples, "psmgen_model_compile_misses_total") >= 2
        assert (
            find_sample(samples, "psmgen_model_compiled_dropped_total") >= 1
        )
