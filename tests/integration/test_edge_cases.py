"""Edge-case and failure-injection tests across the whole flow."""

import numpy as np
import pytest

from repro.core.mergeability import MergePolicy
from repro.core.mining import AssertionMiner, MinerConfig
from repro.core.pipeline import FlowConfig, PsmFlow
from repro.traces.functional import FunctionalTrace
from repro.traces.power import PowerTrace
from repro.traces.variables import bool_in, int_in


def config():
    return FlowConfig(
        miner=MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0),
        merge=MergePolicy(max_cv=None),
    )


class TestDegenerateInputs:
    def test_nan_power_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace([1.0, float("nan")])

    def test_infinite_power_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace([1.0, float("inf")])

    def test_single_instant_trace(self):
        """One instant: no pattern can complete; the model is empty but
        nothing crashes."""
        trace = FunctionalTrace([int_in("x", 2)], {"x": [1]})
        power = PowerTrace([1.0])
        flow = PsmFlow(config()).fit([trace], [power])
        assert flow.report.n_states == 0
        result = flow.estimate(trace)
        assert result.desync_instants == 1

    def test_two_instant_trace(self):
        trace = FunctionalTrace([int_in("x", 2)], {"x": [1, 2]})
        power = PowerTrace([1.0, 2.0])
        flow = PsmFlow(config()).fit([trace], [power])
        assert flow.report.n_states == 1  # one next-pattern state
        result = flow.estimate(trace)
        assert np.isfinite(result.estimated.values).all()

    def test_constant_trace_never_completes_a_pattern(self):
        trace = FunctionalTrace([int_in("x", 2)], {"x": [1] * 50})
        power = PowerTrace([1.0] * 50)
        flow = PsmFlow(config()).fit([trace], [power])
        assert flow.report.n_states == 0

    def test_constant_power_world(self):
        """Behavioural variety with flat power: everything merges."""
        values = ([0] * 4 + [1] * 4 + [2] * 4) * 4 + [0]
        trace = FunctionalTrace([int_in("x", 2)], {"x": values})
        power = PowerTrace([2.5] * len(values))
        flow = PsmFlow(config()).fit([trace], [power])
        assert flow.report.n_states == 1
        result = flow.estimate(trace)
        explained = result.estimated.values[
            np.array(result.state_sequence[: len(values)]) != None  # noqa: E711
        ]
        assert np.allclose(explained, 2.5)

    def test_alternating_modes_every_cycle(self):
        """Pure next-pattern world: chain of n=1 states, Case-1 merges."""
        values = [0, 1] * 30 + [0]
        trace = FunctionalTrace([int_in("x", 2)], {"x": values})
        power = PowerTrace([1.0 if v == 0 else 3.0 for v in values])
        flow = PsmFlow(config()).fit([trace], [power])
        assert flow.report.n_states <= 4
        result = flow.estimate(trace)
        expected = np.array([1.0 if v == 0 else 3.0 for v in values])
        matches = np.isclose(result.estimated.values, expected)
        assert matches.mean() > 0.9

    def test_estimate_on_different_variable_set_fails_loudly(self):
        trace = FunctionalTrace([int_in("x", 2)], {"x": [0] * 8 + [1] * 8})
        power = PowerTrace([1.0] * 16)
        flow = PsmFlow(config()).fit([trace], [power])
        alien = FunctionalTrace([bool_in("y")], {"y": [0, 1]})
        with pytest.raises(KeyError):
            flow.estimate(alien)


class TestNoiseRobustness:
    def test_flow_survives_noisy_references(self):
        values = ([0] * 6 + [1] * 6) * 8 + [0]
        trace = FunctionalTrace([int_in("x", 2)], {"x": values})
        clean = PowerTrace([1.0 if v == 0 else 5.0 for v in values])
        noisy = clean.with_noise(0.2, seed=3)
        flow = PsmFlow(config()).fit([trace], [noisy])
        result = flow.estimate(trace)
        # the model's constants approach the clean levels despite noise
        from repro.core.metrics import mre

        assert mre(result.estimated, clean) < 15.0

    def test_heavy_noise_still_produces_valid_model(self):
        values = ([0] * 6 + [1] * 6) * 8 + [0]
        trace = FunctionalTrace([int_in("x", 2)], {"x": values})
        clean = PowerTrace([1.0 if v == 0 else 5.0 for v in values])
        noisy = clean.with_noise(2.0, seed=3)
        flow = PsmFlow(config()).fit([trace], [noisy])
        for psm in flow.psms:
            psm.validate()


class TestMultiTraceTraining:
    def test_disjoint_behaviours_union(self):
        """Each trace covers one mode; the union model explains both."""
        t1_values = ([0] * 5 + [1] * 5) * 4 + [0]
        t2_values = ([0] * 5 + [2] * 5) * 4 + [0]
        t1 = FunctionalTrace([int_in("x", 2)], {"x": t1_values})
        t2 = FunctionalTrace([int_in("x", 2)], {"x": t2_values})
        levels = {0: 1.0, 1: 5.0, 2: 9.0}
        p1 = PowerTrace([levels[v] for v in t1_values])
        p2 = PowerTrace([levels[v] for v in t2_values])
        flow = PsmFlow(config()).fit([t1, t2], [p1, p2])
        mixed_values = [0] * 5 + [1] * 5 + [0] * 5 + [2] * 5 + [0] * 2
        mixed = FunctionalTrace([int_in("x", 2)], {"x": mixed_values})
        result = flow.estimate(mixed)
        expected = np.array([levels[v] for v in mixed_values])
        matches = np.isclose(result.estimated.values, expected, rtol=1e-6)
        assert matches.mean() > 0.8

    def test_ten_training_traces(self):
        rng = np.random.default_rng(0)
        traces, powers = [], []
        for _ in range(10):
            values = []
            for _ in range(6):
                values.extend([int(rng.integers(0, 3))] * int(rng.integers(3, 7)))
            traces.append(
                FunctionalTrace([int_in("x", 2)], {"x": values})
            )
            levels = {0: 1.0, 1: 5.0, 2: 9.0}
            powers.append(PowerTrace([levels[v] for v in values]))
        flow = PsmFlow(config()).fit(traces, powers)
        assert flow.report.n_psms >= 1
        assert flow.report.n_states <= 12
        for psm in flow.psms:
            psm.validate()
