"""End-to-end tests of the psmgen command-line interface."""

import json

import pytest

from repro.cli import main
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS
from repro.traces.io import save_training_pair


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    spec = BENCHMARKS["RAM"]
    train = run_power_simulation(spec.module_class(), spec.short_ts())
    save_training_pair(train.trace, train.power, root / "train")
    evaluation = run_power_simulation(
        spec.module_class(), spec.long_ts(800)
    )
    save_training_pair(evaluation.trace, evaluation.power, root / "eval")
    return root


class TestGenerate:
    def test_generate_writes_model(self, trace_files, capsys):
        model = trace_files / "model.json"
        code = main(
            [
                "generate",
                "--func",
                str(trace_files / "train.func.csv"),
                "--power",
                str(trace_files / "train.power.csv"),
                "-o",
                str(model),
            ]
        )
        assert code == 0
        assert model.exists()
        payload = json.loads(model.read_text())
        assert payload["psms"]
        out = capsys.readouterr().out
        assert "generated" in out

    def test_generate_optional_artifacts(self, trace_files):
        code = main(
            [
                "generate",
                "--func",
                str(trace_files / "train.func.csv"),
                "--power",
                str(trace_files / "train.power.csv"),
                "-o",
                str(trace_files / "model2.json"),
                "--dot",
                str(trace_files / "model.dot"),
                "--systemc",
                str(trace_files / "monitor.cpp"),
            ]
        )
        assert code == 0
        assert (trace_files / "model.dot").read_text().startswith("digraph")
        assert "SC_MODULE" in (trace_files / "monitor.cpp").read_text()

    def test_mismatched_pairs_rejected(self, trace_files):
        code = main(
            [
                "generate",
                "--func",
                str(trace_files / "train.func.csv"),
                "--power",
                str(trace_files / "train.power.csv"),
                "--power",
                str(trace_files / "train.power.csv"),
            ]
        )
        assert code == 2


class TestEstimate:
    def test_estimate_scores_against_reference(self, trace_files, capsys):
        model = trace_files / "model.json"
        if not model.exists():
            TestGenerate().test_generate_writes_model(trace_files, capsys)
            capsys.readouterr()
        code = main(
            [
                "estimate",
                "--model",
                str(model),
                "--func",
                str(trace_files / "eval.func.csv"),
                "--reference",
                str(trace_files / "eval.power.csv"),
                "-o",
                str(trace_files / "est.csv"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MRE" in out
        assert (trace_files / "est.csv").exists()

    def test_estimate_multiple_traces_shares_model(
        self, trace_files, capsys
    ):
        model = trace_files / "model.json"
        if not model.exists():
            TestGenerate().test_generate_writes_model(trace_files, capsys)
            capsys.readouterr()
        # single-trace baseline output
        code = main(
            [
                "estimate",
                "--model",
                str(model),
                "--func",
                str(trace_files / "eval.func.csv"),
            ]
        )
        assert code == 0
        single = capsys.readouterr().out
        code = main(
            [
                "estimate",
                "--model",
                str(model),
                "--func",
                str(trace_files / "eval.func.csv"),
                "--func",
                str(trace_files / "train.func.csv"),
                "-o",
                str(trace_files / "multi.csv"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # per-trace lines carry the trace path, results are unchanged
        assert out.count("estimated") >= 2
        assert "eval.func.csv]" in out and "train.func.csv]" in out
        assert single.splitlines()[0].split(": ", 1)[1] in out
        assert (trace_files / "multi.0.csv").exists()
        assert (trace_files / "multi.1.csv").exists()

    def test_estimate_reference_count_mismatch_rejected(
        self, trace_files, capsys
    ):
        model = trace_files / "model.json"
        if not model.exists():
            TestGenerate().test_generate_writes_model(trace_files, capsys)
            capsys.readouterr()
        code = main(
            [
                "estimate",
                "--model",
                str(model),
                "--func",
                str(trace_files / "eval.func.csv"),
                "--func",
                str(trace_files / "train.func.csv"),
                "--reference",
                str(trace_files / "eval.power.csv"),
            ]
        )
        assert code == 2

    def test_estimate_malformed_bundle_exits_cleanly(
        self, trace_files, capsys
    ):
        bad = trace_files / "bad_model.json"
        bad.write_text('{"schema": "psmgen-psms/v99"}')
        code = main(
            [
                "estimate",
                "--model",
                str(bad),
                "--func",
                str(trace_files / "eval.func.csv"),
            ]
        )
        assert code == 2
        assert "psmgen-psms/v99" in capsys.readouterr().err


class TestBench:
    def test_unknown_ip_rejected(self, capsys):
        assert main(["bench", "--ip", "nope"]) == 2

    def test_bench_runs_small(self, capsys):
        code = main(["bench", "--ip", "MultSum", "--cycles", "1200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MultSum" in out
        assert "MRE" in out


class TestDescribe:
    def test_describe_prints_model(self, trace_files, capsys):
        model = trace_files / "model.json"
        if not model.exists():
            TestGenerate().test_generate_writes_model(trace_files, capsys)
            capsys.readouterr()
        code = main(["describe", "--model", str(model)])
        assert code == 0
        out = capsys.readouterr().out
        assert "PSM(s)" in out
        assert "deterministic" in out

    def test_describe_reports_serving_metadata(self, trace_files, capsys):
        model = trace_files / "model.json"
        if not model.exists():
            TestGenerate().test_generate_writes_model(trace_files, capsys)
            capsys.readouterr()
        code = main(["describe", "--model", str(model)])
        assert code == 0
        out = capsys.readouterr().out
        assert "schema: psmgen-psms/v1" in out
        assert "digest: " in out
        # generate embeds the training variables and stage timings
        assert "variables: " in out
        assert "generation stages: " in out
        assert "mine=" in out

    def test_describe_rejects_malformed_bundle(self, trace_files, capsys):
        bad = trace_files / "bad_describe.json"
        bad.write_text("not json")
        code = main(["describe", "--model", str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_describe_with_coverage(self, trace_files, capsys):
        model = trace_files / "model.json"
        if not model.exists():
            TestGenerate().test_generate_writes_model(trace_files, capsys)
            capsys.readouterr()
        code = main(
            [
                "describe",
                "--model",
                str(model),
                "--func",
                str(trace_files / "eval.func.csv"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "state coverage" in out
        assert "transition coverage" in out


class TestConvert:
    def test_csv_binary_round_trip(self, trace_files, capsys):
        binary = trace_files / "train.npt"
        code = main(
            [
                "convert",
                "--from-csv",
                str(trace_files / "train"),
                "--to-binary",
                str(binary),
            ]
        )
        assert code == 0
        assert binary.exists()
        assert "binary training pair written" in capsys.readouterr().out

        code = main(
            [
                "convert",
                "--from-binary",
                str(binary),
                "--to-csv",
                str(trace_files / "back"),
            ]
        )
        assert code == 0
        assert "CSV training pair written" in capsys.readouterr().out

        from repro.traces.io import load_training_pair

        original_trace, original_power = load_training_pair(
            trace_files / "train"
        )
        round_trip_trace, round_trip_power = load_training_pair(
            trace_files / "back"
        )
        assert len(round_trip_trace) == len(original_trace)
        assert round_trip_trace.at(0) == original_trace.at(0)
        assert round_trip_trace.at(len(original_trace) - 1) == (
            original_trace.at(len(original_trace) - 1)
        )
        assert (
            round_trip_power.values.tobytes()
            == original_power.values.tobytes()
        )

    def test_requires_exactly_one_source(self, trace_files, capsys):
        assert main(["convert"]) == 2
        assert main(
            [
                "convert",
                "--from-csv",
                str(trace_files / "train"),
                "--from-binary",
                "x.npt",
            ]
        ) == 2
        capsys.readouterr()

    def test_requires_matching_destination(self, trace_files, capsys):
        assert main(
            ["convert", "--from-csv", str(trace_files / "train")]
        ) == 2
        assert main(["convert", "--from-binary", "missing.npt"]) == 2
        capsys.readouterr()
