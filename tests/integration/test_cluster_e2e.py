"""End-to-end acceptance of the multi-worker serving cluster.

Runs the real thing: worker *processes* behind the consistent-hash
router, live traffic, a worker hard-killed mid-run.  Asserts the
ISSUE's cluster contract:

* every response during and after the kill is a 200 — the router's
  replay-on-worker-loss means clients never observe the failure;
* served estimates stay **bit-for-bit** identical to the offline
  ``psmgen estimate`` path, wherever they were routed;
* the hash ring rebalances (the victim leaves, and rejoins once the
  supervisor has respawned it);
* ``psmgen serve`` — single-process and cluster — exits 0 on SIGTERM
  after a graceful drain.

Process-backend tests are skipped where the sandbox cannot fork
(pytest-xdist workers, restricted platforms); the routing logic itself
is covered process-free in ``tests/serve/test_cluster.py``.
"""

import asyncio
import json
import os
import re
import select
import signal
import subprocess
import sys
import time

import pytest

from repro.core.export import labeler_from_psms, load_psms, save_psms
from repro.core.simulation import MultiPsmSimulator
from repro.parallel import spawn_process, under_test_worker
from repro.serve.cluster import ClusterConfig, ServeCluster
from repro.serve.loadgen import http_request_json
from repro.traces.functional import FunctionalTrace
from repro.traces.io import functional_trace_from_json, functional_trace_to_json
from repro.traces.variables import bool_in

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from core.test_export import fig2_psm  # noqa: E402

VARIABLES = [bool_in("on"), bool_in("start")]
MODELS = ("alpha", "beta")
REQUESTS_PER_MODEL = 12


def _can_fork() -> bool:
    if under_test_worker():
        return False
    try:
        probe = spawn_process(time.sleep, (0,), name="psm-fork-probe")
    except Exception:
        return False
    probe.join(timeout=10)
    return probe.exitcode == 0


def make_window(seed: int, instants: int = 24) -> dict:
    on = [(i + seed) % 3 != 0 for i in range(instants)]
    start = [(i + seed) % 4 == 1 for i in range(instants)]
    trace = FunctionalTrace(
        VARIABLES,
        {"on": [int(v) for v in on], "start": [int(v) for v in start]},
        name=f"w{seed}",
    )
    return functional_trace_to_json(trace)


@pytest.fixture(scope="module")
def models_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("cluster-bundles")
    for name in MODELS:
        save_psms([fig2_psm()], root / f"{name}.json", variables=VARIABLES)
    return root


def offline_estimate(bundle_path, window):
    """The ``psmgen estimate`` code path on one serialised window."""
    psms = load_psms(bundle_path)
    labeler = labeler_from_psms(psms)
    simulator = MultiPsmSimulator(psms, labeler)
    return simulator.run(functional_trace_from_json(window))


@pytest.mark.skipif(
    not _can_fork(), reason="process spawning unavailable here"
)
class TestClusterProcesses:
    def test_worker_kill_mid_traffic_zero_failures_bitwise(
        self, models_dir
    ):
        windows = {
            name: [make_window(i) for i in range(4)] for name in MODELS
        }

        async def scenario():
            cluster = ServeCluster(
                models_dir,
                config=ClusterConfig(
                    workers=3, vnodes=16, restart_backoff=0.1
                ),
                backend="process",
            )
            await cluster.start()
            try:
                port = cluster.port
                supervisor = cluster.supervisor
                victim = supervisor.ring.lookup("alpha")
                members_before = set(supervisor.ring.workers)

                async def fire(name, index):
                    # Stagger launches so the kill lands mid-stream.
                    await asyncio.sleep(0.012 * index)
                    window = windows[name][index % len(windows[name])]
                    status, headers, raw = await http_request_json(
                        "127.0.0.1",
                        port,
                        "POST",
                        "/v1/estimate",
                        {"model": name, "trace": window},
                        timeout=60.0,
                    )
                    return name, window, status, headers, raw

                async def kill_mid_run():
                    await asyncio.sleep(0.05)
                    supervisor.workers[victim].process.kill()

                requests = [
                    fire(name, index)
                    for name in MODELS
                    for index in range(REQUESTS_PER_MODEL)
                ]
                results = (
                    await asyncio.gather(*requests, kill_mid_run())
                )[:-1]

                # Ring rebalanced: the victim left on death and rejoins
                # as a fresh member once the supervisor respawned it.
                for _ in range(200):
                    handle = supervisor.workers[victim]
                    if (
                        handle.restarts >= 1
                        and handle.ready
                        and victim in supervisor.ring
                    ):
                        break
                    await asyncio.sleep(0.1)
                assert supervisor.workers[victim].restarts >= 1
                assert victim in supervisor.ring
                assert set(supervisor.ring.workers) == members_before

                # Traffic after the rebalance lands on the respawned
                # primary again.
                status, headers, _ = await http_request_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/estimate",
                    {"model": "alpha", "trace": windows["alpha"][0]},
                    timeout=60.0,
                )
                assert status == 200
                assert headers.get("x-psm-worker") == victim
                return results, await cluster.shutdown(15.0)
            except BaseException:
                await cluster.shutdown(5.0)
                raise

        results, drained = asyncio.run(scenario())
        assert drained is True
        assert len(results) == len(MODELS) * REQUESTS_PER_MODEL
        served_by = set()
        for name, window, status, headers, raw in results:
            # Zero non-drain failures: every request during the kill
            # window still answered 200 via replay on a live worker.
            assert status == 200, raw
            served_by.add(headers.get("x-psm-worker"))
            payload = json.loads(raw)
            reference = offline_estimate(
                models_dir / f"{name}.json", window
            )
            assert payload["estimated"] == [
                float(v) for v in reference.estimated.values
            ]
            assert payload["energy"] == reference.energy
            assert payload["wsp"] == reference.wsp
        assert served_by  # workers self-tagged every response

    def test_cluster_metrics_aggregate_across_processes(self, models_dir):
        async def scenario():
            cluster = ServeCluster(
                models_dir,
                config=ClusterConfig(workers=2, vnodes=16),
                backend="process",
            )
            await cluster.start()
            try:
                for name in MODELS:
                    status, _, _ = await http_request_json(
                        "127.0.0.1",
                        cluster.port,
                        "POST",
                        "/v1/estimate",
                        {"model": name, "trace": make_window(0)},
                        timeout=60.0,
                    )
                    assert status == 200
                status, _, raw = await http_request_json(
                    "127.0.0.1", cluster.port, "GET", "/metrics"
                )
                assert status == 200
                return raw.decode(), await cluster.shutdown(10.0)
            except BaseException:
                await cluster.shutdown(5.0)
                raise

        text, drained = asyncio.run(scenario())
        assert drained is True
        assert 'worker="w0"' in text and 'worker="w1"' in text
        assert "psmgen_ring_share" in text
        assert "psmgen_worker_up" in text
        assert "psmgen_batch_occupancy_bucket" in text


class TestGracefulSignals:
    """``psmgen serve`` must drain and exit 0 on SIGTERM."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sigterm_drains_and_exits_zero(self, models_dir, workers):
        if workers > 1 and not _can_fork():
            pytest.skip("process spawning unavailable here")
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "src",
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.cli import main; raise SystemExit(main())",
                "serve",
                "--models-dir",
                str(models_dir),
                "--port",
                "0",
                "--workers",
                str(workers),
                "--drain-timeout",
                "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            port = None
            deadline = time.monotonic() + 60
            lines = []
            while time.monotonic() < deadline and port is None:
                assert proc.poll() is None, "".join(lines)
                readable, _, _ = select.select([proc.stdout], [], [], 0.25)
                if not readable:
                    continue
                line = proc.stdout.readline()
                lines.append(line)
                match = re.search(r"http://[\w.\-]+:(\d+)", line)
                if match:
                    port = int(match.group(1))
            assert port is not None, "".join(lines)

            status, _, _ = asyncio.run(
                http_request_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/estimate",
                    {"model": "alpha", "trace": make_window(1)},
                    timeout=60.0,
                )
            )
            assert status == 200

            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        assert proc.returncode == 0, output
        assert "drained" in output
        assert "final metrics flushed" in output
