"""End-to-end acceptance test of the PSM serving layer.

Exports PSM bundles for two benchmark IPs, runs the asyncio server
in-process (on a background event-loop thread), fires >= 32 concurrent
``/v1/estimate`` requests across both models over real TCP and checks:

* every served estimate is **bit-for-bit** equal to an offline
  ``load_psms`` -> ``labeler_from_psms`` -> ``MultiPsmSimulator`` run of
  the same window (the ``psmgen estimate`` code path);
* at least one micro-batch coalesced two or more requests, visible in
  ``/metrics``;
* a server with an overflowing queue answers 429 with ``Retry-After``.
"""

import asyncio
import threading

import pytest

from repro.bench import fit_benchmark
from repro.core.export import labeler_from_psms, load_psms, save_psms
from repro.core.simulation import MultiPsmSimulator
from repro.serve.loadgen import http_request_json
from repro.serve.metrics import find_sample, parse_prometheus
from repro.serve.server import create_server
from repro.traces.io import functional_trace_from_json, functional_trace_to_json

MODELS = ("MultSum", "RAM")
WINDOW = 64
REQUESTS_PER_MODEL = 16  # 32 total across the two models


class ServerHandle:
    """An in-process server running on its own event-loop thread."""

    def __init__(self, models_dir, **kwargs):
        self.loop = asyncio.new_event_loop()
        self.server = None
        self._started = threading.Event()
        self._models_dir = models_dir
        self._kwargs = kwargs
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.server = create_server(self._models_dir, port=0, **self._kwargs)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()

    def __enter__(self):
        self.thread.start()
        assert self._started.wait(30), "server failed to start"
        return self

    def __exit__(self, *exc_info):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(30)

    @property
    def port(self):
        return self.server.port


def post_estimate(port, body, timeout=60.0):
    """One synchronous POST /v1/estimate from the test thread."""
    return asyncio.run(
        http_request_json(
            "127.0.0.1", port, "POST", "/v1/estimate", body, timeout=timeout
        )
    )


def get(port, path):
    """One synchronous GET from the test thread."""
    return asyncio.run(
        http_request_json("127.0.0.1", port, "GET", path, timeout=30.0)
    )


@pytest.fixture(scope="module")
def serving_dir(tmp_path_factory):
    """Exported bundles plus per-model request windows and baselines."""
    root = tmp_path_factory.mktemp("bundles")
    windows = {}
    for name in MODELS:
        fitted = fit_benchmark(name)
        trace = fitted.short_ref.trace
        save_psms(
            fitted.flow.psms,
            root / f"{name}.json",
            stage_reports=fitted.flow.report.stages,
            variables=trace.variables,
        )
        windows[name] = [
            functional_trace_to_json(
                trace.slice(start, min(start + WINDOW - 1, len(trace) - 1))
            )
            for start in range(0, len(trace), WINDOW)
        ]
        assert len(windows[name]) >= 2
    return root, windows


def offline_estimate(bundle_path, window):
    """The ``psmgen estimate`` code path on one serialised window."""
    psms = load_psms(bundle_path)
    labeler = labeler_from_psms(psms)
    simulator = MultiPsmSimulator(psms, labeler)
    return simulator.run(functional_trace_from_json(window))


class TestServeEndToEnd:
    def test_concurrent_estimates_bitwise_and_batched(self, serving_dir):
        root, windows = serving_dir
        bodies = []
        for name in MODELS:
            for index in range(REQUESTS_PER_MODEL):
                window = windows[name][index % len(windows[name])]
                bodies.append((name, window))
        assert len(bodies) >= 32

        with ServerHandle(root, max_queue=64, max_batch=8) as handle:
            port = handle.port

            async def fire():
                return await asyncio.gather(
                    *[
                        http_request_json(
                            "127.0.0.1",
                            port,
                            "POST",
                            "/v1/estimate",
                            {"model": name, "trace": window},
                            timeout=120.0,
                        )
                        for name, window in bodies
                    ]
                )

            responses = asyncio.run(fire())
            status, _headers, metrics_body = get(port, "/metrics")
            assert status == 200
            status, _headers, models_body = get(port, "/v1/models")
            assert status == 200

        import json

        assert all(status == 200 for status, _h, _b in responses)
        max_batch_seen = 0
        for (name, window), (_s, _h, raw) in zip(bodies, responses):
            payload = json.loads(raw)
            reference = offline_estimate(root / f"{name}.json", window)
            # (a) bit-for-bit equality with the offline estimate path
            assert payload["estimated"] == [
                float(v) for v in reference.estimated.values
            ]
            assert payload["energy"] == reference.energy
            assert payload["wsp"] == reference.wsp
            assert (
                payload["wrong_state_fraction"]
                == reference.wrong_state_fraction
            )
            assert payload["model"] == name
            max_batch_seen = max(max_batch_seen, payload["batch_size"])

        # (b) at least one batch coalesced >= 2 requests, and /metrics
        # shows it: the le="1" bucket undercounts the total batches.
        assert max_batch_seen >= 2
        samples = parse_prometheus(metrics_body.decode("utf-8"))
        singletons = find_sample(samples, "psmgen_batch_size_bucket", le="1")
        batches = samples["psmgen_batch_size_count"][""]
        assert batches >= 1
        assert singletons < batches
        assert (
            find_sample(
                samples, "psmgen_requests_total",
                endpoint="estimate", status="200",
            )
            >= 32
        )

        # the registry lists both models with their content digests
        rows = {
            row["name"]: row
            for row in json.loads(models_body)["models"]
        }
        for name in MODELS:
            assert rows[name]["version"]
            assert rows[name]["quarantined"] is False

    def test_queue_overflow_answers_429_with_retry_after(self, serving_dir):
        root, windows = serving_dir
        name = MODELS[0]
        bodies = [
            {"model": name, "trace": windows[name][i % len(windows[name])]}
            for i in range(16)
        ]
        with ServerHandle(root, max_queue=1, max_batch=1) as handle:
            port = handle.port

            async def fire():
                return await asyncio.gather(
                    *[
                        http_request_json(
                            "127.0.0.1",
                            port,
                            "POST",
                            "/v1/estimate",
                            body,
                            timeout=120.0,
                        )
                        for body in bodies
                    ]
                )

            responses = asyncio.run(fire())

        statuses = [status for status, _h, _b in responses]
        assert 200 in statuses  # the server kept serving under overload
        rejected = [
            (status, headers)
            for status, headers, _b in responses
            if status == 429
        ]
        assert rejected, f"no 429 among statuses {statuses}"
        for _status, headers in rejected:
            assert int(headers["retry-after"]) >= 1

    def test_unknown_and_malformed_requests(self, serving_dir):
        root, windows = serving_dir
        with ServerHandle(root) as handle:
            port = handle.port
            status, _h, _b = post_estimate(
                port, {"model": "nope", "trace": windows[MODELS[0]][0]}
            )
            assert status == 404
            status, _h, _b = post_estimate(port, {"model": MODELS[0]})
            assert status == 400
            status, _h, _b = get(port, "/healthz")
            assert status == 200
            status, _h, _b = get(port, "/nope")
            assert status == 404

    def test_vectors_input_resolved_from_bundle_variables(self, serving_dir):
        root, windows = serving_dir
        name = MODELS[0]
        window = windows[name][0]
        vectors = [
            {
                var: values[index]
                for var, values in window["columns"].items()
            }
            for index in range(len(next(iter(window["columns"].values()))))
        ]
        with ServerHandle(root) as handle:
            port = handle.port
            status, _h, raw = post_estimate(
                port, {"model": name, "vectors": vectors}
            )
        import json

        assert status == 200
        payload = json.loads(raw)
        reference = offline_estimate(root / f"{name}.json", window)
        assert payload["estimated"] == [
            float(v) for v in reference.estimated.values
        ]

    def test_warm_endpoint_loads_and_compiles(self, serving_dir):
        import json

        root, _windows = serving_dir
        with ServerHandle(root) as handle:
            port = handle.port
            status, _h, raw = post_estimate(
                port,
                {"models": list(MODELS) + ["nope"]},
            )
            # POSTing to /v1/estimate with no model is a 400; the warm
            # route is its own endpoint.
            assert status == 400
            status, _h, raw = asyncio.run(
                http_request_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/warm",
                    {"models": list(MODELS) + ["nope"]},
                    timeout=60.0,
                )
            )
            assert status == 200
            payload = json.loads(raw)
            assert payload["warmed"] == len(MODELS)
            assert sorted(payload["models"]) == sorted(MODELS)
            assert "nope" in payload["skipped"]
            # Warmed models are registry cache hits from the first
            # routed request on; the counters prove the replay ran.
            status, _h, raw = get(port, "/metrics")
            samples = parse_prometheus(raw.decode("utf-8"))
            assert find_sample(samples, "psmgen_warm_replayed_total") == (
                len(MODELS)
            )
            assert (
                find_sample(samples, "psmgen_warm_seconds_total") > 0.0
            )

    def test_warm_endpoint_rejects_bad_bodies(self, serving_dir):
        root, _windows = serving_dir
        with ServerHandle(root) as handle:
            port = handle.port
            for body in ({"models": "alpha"}, {"models": [1, 2]}, []):
                status, _h, _b = asyncio.run(
                    http_request_json(
                        "127.0.0.1",
                        port,
                        "POST",
                        "/v1/warm",
                        body,
                        timeout=30.0,
                    )
                )
                assert status == 400
            status, _h, _b = get(port, "/v1/warm")
            assert status == 405
