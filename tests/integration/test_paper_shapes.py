"""Integration tests: the paper's headline result shapes.

These exercise the complete flow on the four benchmark IPs and assert the
qualitative claims of the evaluation section (Tables II/III), not the
absolute numbers: who is accurate, who is not, and why.
"""

import numpy as np
import pytest

from repro.core.metrics import mre
from repro.core.pipeline import PsmFlow
from repro.core.psm import RegressionPower
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS

EVAL_CYCLES = 3000


@pytest.fixture(scope="module")
def all_fitted():
    """Fit every benchmark once; reused by all shape tests."""
    fitted = {}
    for name, spec in BENCHMARKS.items():
        reference = run_power_simulation(
            spec.module_class(), spec.short_ts()
        )
        flow = PsmFlow(spec.flow_config()).fit(
            [reference.trace], [reference.power]
        )
        evaluation = run_power_simulation(
            spec.module_class(), spec.long_ts(EVAL_CYCLES)
        )
        train = flow.estimate(reference.trace)
        long = flow.estimate(evaluation.trace)
        fitted[name] = {
            "flow": flow,
            "train_mre": mre(train.estimated, reference.power),
            "long_mre": mre(long.estimated, evaluation.power),
            "long_result": long,
            "reference": reference,
        }
    return fitted


class TestTable2Shapes:
    def test_ram_mre_is_very_low(self, all_fitted):
        assert all_fitted["RAM"]["train_mre"] < 3.0

    def test_aes_mre_is_moderate(self, all_fitted):
        assert all_fitted["AES"]["train_mre"] < 10.0

    def test_multsum_mre_above_ram(self, all_fitted):
        assert (
            all_fitted["MultSum"]["train_mre"]
            > all_fitted["RAM"]["train_mre"]
        )
        assert all_fitted["MultSum"]["train_mre"] < 15.0

    def test_camellia_mre_is_high(self, all_fitted):
        """The paper's headline failure case (~33% MRE)."""
        assert all_fitted["Camellia"]["train_mre"] > 20.0

    def test_camellia_much_worse_than_others(self, all_fitted):
        camellia = all_fitted["Camellia"]["train_mre"]
        for other in ("RAM", "MultSum", "AES"):
            assert camellia > 2.5 * all_fitted[other]["train_mre"]

    def test_psm_sets_are_compact(self, all_fitted):
        for name, data in all_fitted.items():
            report = data["flow"].report
            assert report.n_states <= 20, name
            assert report.n_states < report.n_raw_states, name

    def test_ram_uses_regression_states(self, all_fitted):
        """The RAM result depends on the Sec. IV refinement."""
        flow = all_fitted["RAM"]["flow"]
        assert any(
            isinstance(s.power_model, RegressionPower)
            for psm in flow.psms
            for s in psm.states
        )

    def test_camellia_busy_state_stays_constant(self, all_fitted):
        """Camellia's inputs are stable while busy, so the regression
        gate cannot fire — its states stay constants (and inaccurate)."""
        flow = all_fitted["Camellia"]["flow"]
        busiest = max(
            (s for psm in flow.psms for s in psm.states),
            key=lambda s: s.mu,
        )
        assert not isinstance(busiest.power_model, RegressionPower)


class TestTable3Shapes:
    def test_short_models_generalise(self, all_fitted):
        for name in ("RAM", "MultSum", "AES"):
            assert all_fitted[name]["long_mre"] < 15.0, name

    def test_camellia_wsp_dominates(self, all_fitted):
        camellia_wsp = all_fitted["Camellia"][
            "long_result"
        ].wrong_state_fraction
        assert camellia_wsp > 5.0
        for other in ("RAM", "MultSum", "AES"):
            other_wsp = all_fitted[other]["long_result"].wrong_state_fraction
            assert camellia_wsp > other_wsp + 4.0

    def test_psm_estimation_faster_than_power_simulation(self, all_fitted):
        import time

        for name, data in all_fitted.items():
            spec = BENCHMARKS[name]
            stimulus = spec.long_ts(EVAL_CYCLES)
            start = time.perf_counter()
            evaluation = run_power_simulation(spec.module_class(), stimulus)
            px_time = time.perf_counter() - start
            best = None
            for _ in range(3):
                start = time.perf_counter()
                data["flow"].estimate(evaluation.trace)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None or elapsed < best else best
            assert px_time / best > 2.0, name


class TestDeterminism:
    def test_flow_is_reproducible(self):
        spec = BENCHMARKS["MultSum"]
        results = []
        for _ in range(2):
            reference = run_power_simulation(
                spec.module_class(), spec.short_ts()
            )
            flow = PsmFlow(spec.flow_config()).fit(
                [reference.trace], [reference.power]
            )
            result = flow.estimate(reference.trace)
            results.append(result.estimated.values)
        assert np.allclose(results[0], results[1])
