"""Serving-path tests of the binary ``.npt`` estimate input.

``POST /v1/estimate`` accepts the packed binary trace container
(``application/x-psmgen-npt`` or magic-sniffed) and feeds it to the
compiled batch kernel through zero-copy buffer views.  These tests
round-trip real windows through both the JSON and binary routes and
check bit-for-bit agreement, exercise the error paths (missing model
parameter, corrupt container), verify the registry's compile counters
surface in ``GET /v1/models`` and ``/metrics``, and cover the loadgen
client's warm-up window exclusion against a live server.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.bench import fit_benchmark
from repro.core.export import save_psms
from repro.serve.loadgen import http_request_json, run_loadgen
from repro.serve.metrics import find_sample, parse_prometheus
from repro.serve.server import NPT_CONTENT_TYPE, create_server
from repro.traces.io import functional_trace_to_json, save_functional_bin

MODEL = "MultSum"
WINDOW = 64


class ServerHandle:
    """An in-process server running on its own event-loop thread."""

    def __init__(self, models_dir, **kwargs):
        self.loop = asyncio.new_event_loop()
        self.server = None
        self._started = threading.Event()
        self._models_dir = models_dir
        self._kwargs = kwargs
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.server = create_server(self._models_dir, port=0, **self._kwargs)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()

    def __enter__(self):
        self.thread.start()
        assert self._started.wait(30), "server failed to start"
        return self

    def __exit__(self, *exc_info):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(30)

    @property
    def port(self):
        return self.server.port


async def _http_request_bytes(
    host, port, method, path, body, content_type, timeout=60.0
):
    """One raw-body HTTP/1.1 request (binary counterpart of the JSON helper)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await asyncio.wait_for(writer.drain(), timeout)
        status_line = await reader.readline()
        status = int(status_line.decode("latin-1").split(" ", 2)[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await reader.readexactly(length) if length else b""
        return status, headers, data
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


def post_npt(port, path, body, content_type=NPT_CONTENT_TYPE):
    return asyncio.run(
        _http_request_bytes(
            "127.0.0.1", port, "POST", path, body, content_type
        )
    )


def post_json(port, body):
    return asyncio.run(
        http_request_json(
            "127.0.0.1", port, "POST", "/v1/estimate", body, timeout=60.0
        )
    )


def get(port, path):
    return asyncio.run(
        http_request_json("127.0.0.1", port, "GET", path, timeout=30.0)
    )


@pytest.fixture(scope="module")
def serving_dir(tmp_path_factory):
    """Exported bundle plus JSON windows and their ``.npt`` encodings."""
    root = tmp_path_factory.mktemp("npt_bundles")
    fitted = fit_benchmark(MODEL)
    trace = fitted.short_ref.trace
    save_psms(
        fitted.flow.psms,
        root / f"{MODEL}.json",
        stage_reports=fitted.flow.report.stages,
        variables=trace.variables,
    )
    windows = []
    for index, start in enumerate(range(0, len(trace), WINDOW)):
        window = trace.slice(start, min(start + WINDOW - 1, len(trace) - 1))
        npt_path = root / f"window{index}.npt"
        save_functional_bin(window, npt_path)
        windows.append(
            (functional_trace_to_json(window), npt_path.read_bytes())
        )
    assert len(windows) >= 2
    return root, windows


class TestNptEstimate:
    def test_binary_route_bit_identical_to_json_route(self, serving_dir):
        root, windows = serving_dir
        with ServerHandle(root) as handle:
            port = handle.port
            for window_json, npt_bytes in windows[:3]:
                status, _h, raw_json = post_json(
                    port, {"model": MODEL, "trace": window_json}
                )
                assert status == 200
                status, _h, raw_npt = post_npt(
                    port, f"/v1/estimate?model={MODEL}", npt_bytes
                )
                assert status == 200
                via_json = json.loads(raw_json)
                via_npt = json.loads(raw_npt)
                assert via_npt["estimated"] == via_json["estimated"]
                assert via_npt["energy"] == via_json["energy"]
                assert via_npt["wsp"] == via_json["wsp"]
                assert via_npt["engine"] == "compiled"
                assert via_json["engine"] == "compiled"

    def test_magic_sniff_without_content_type(self, serving_dir):
        root, windows = serving_dir
        _window_json, npt_bytes = windows[0]
        with ServerHandle(root) as handle:
            status, _h, raw = post_npt(
                handle.port,
                f"/v1/estimate?model={MODEL}",
                npt_bytes,
                content_type="application/octet-stream",
            )
        assert status == 200
        assert json.loads(raw)["model"] == MODEL

    def test_binary_without_model_param_is_400(self, serving_dir):
        root, windows = serving_dir
        _window_json, npt_bytes = windows[0]
        with ServerHandle(root) as handle:
            status, _h, raw = post_npt(
                handle.port, "/v1/estimate", npt_bytes
            )
        assert status == 400
        assert "model" in json.loads(raw)["error"]

    def test_corrupt_container_is_400(self, serving_dir):
        root, windows = serving_dir
        _window_json, npt_bytes = windows[0]
        with ServerHandle(root) as handle:
            status, _h, _raw = post_npt(
                handle.port,
                f"/v1/estimate?model={MODEL}",
                npt_bytes[: len(npt_bytes) // 2],
            )
        assert status == 400

    def test_compile_counters_in_models_and_metrics(self, serving_dir):
        root, windows = serving_dir
        window_json, npt_bytes = windows[0]
        with ServerHandle(root) as handle:
            port = handle.port
            for _ in range(2):
                status, _h, _raw = post_npt(
                    port, f"/v1/estimate?model={MODEL}", npt_bytes
                )
                assert status == 200
            status, _h, models_raw = get(port, "/v1/models")
            assert status == 200
            status, _h, metrics_raw = get(port, "/metrics")
            assert status == 200

        payload = json.loads(models_raw)
        # first request lowers the bundle, the second reuses the cache
        assert payload["compile_misses"] == 1
        assert payload["compile_hits"] >= 1
        assert payload["compile_wall_s"] > 0.0
        rows = {row["name"]: row for row in payload["models"]}
        assert rows[MODEL]["compiled"] is True
        assert rows[MODEL]["compile_wall_s"] > 0.0

        samples = parse_prometheus(metrics_raw.decode("utf-8"))
        assert (
            find_sample(samples, "psmgen_model_compile_misses_total") == 1
        )
        assert find_sample(samples, "psmgen_model_compile_hits_total") >= 1

    def test_object_engine_server_still_serves_npt(self, serving_dir):
        root, windows = serving_dir
        window_json, npt_bytes = windows[0]
        with ServerHandle(root, engine="object") as handle:
            port = handle.port
            status, _h, raw_npt = post_npt(
                port, f"/v1/estimate?model={MODEL}", npt_bytes
            )
            status_json, _h, raw_json = post_json(
                port, {"model": MODEL, "trace": window_json}
            )
        assert status == 200 and status_json == 200
        via_npt = json.loads(raw_npt)
        via_json = json.loads(raw_json)
        assert via_npt["engine"] == "object"
        assert via_npt["estimated"] == via_json["estimated"]


class TestLoadgenWarmup:
    def test_warmup_requests_excluded_from_stats(self, serving_dir):
        root, windows = serving_dir
        window_json, _npt_bytes = windows[0]
        with ServerHandle(root) as handle:
            port = handle.port
            report = run_loadgen(
                "127.0.0.1",
                port,
                MODEL,
                [window_json],
                rps=40.0,
                duration_s=0.3,
                concurrency=4,
                warmup=3,
            )
            status, _h, metrics_raw = get(port, "/metrics")
            assert status == 200

        assert report["warmup_requests"] == 3
        assert report["warmup_errors"] == 0
        assert report["completed"] == report["requests"]
        assert report["status_counts"] == {"200": report["completed"]}
        # the warm-up requests really hit the server, they are just not
        # part of the latency statistics
        samples = parse_prometheus(metrics_raw.decode("utf-8"))
        served = find_sample(
            samples, "psmgen_requests_total",
            endpoint="estimate", status="200",
        )
        assert served == report["completed"] + 3
