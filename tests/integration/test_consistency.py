"""Cross-implementation consistency checks.

The same model is executed by three independent engines — the batch
simulator (with its run-length fast path), the causal streaming monitor,
and a model reloaded from its JSON serialisation.  Their estimates must
agree wherever their semantics coincide.
"""

import numpy as np
import pytest

from repro.core.export import labeler_from_psms, psms_from_json, psms_to_json
from repro.core.metrics import mre
from repro.core.pipeline import PsmFlow
from repro.core.simulation import MultiPsmSimulator
from repro.power.estimator import run_power_simulation
from repro.sysc.monitor import StreamingPsmMonitor
from repro.testbench import BENCHMARKS


@pytest.fixture(scope="module", params=["RAM", "MultSum", "AES"])
def fitted(request):
    spec = BENCHMARKS[request.param]
    training = run_power_simulation(spec.module_class(), spec.short_ts())
    flow = PsmFlow(spec.flow_config()).fit(
        [training.trace], [training.power]
    )
    evaluation = run_power_simulation(
        spec.module_class(), spec.long_ts(1500)
    )
    return request.param, flow, evaluation


class TestBatchVsStreaming:
    def test_estimates_agree_on_synchronised_instants(self, fitted):
        name, flow, evaluation = fitted
        batch = flow.estimate(evaluation.trace)
        monitor = StreamingPsmMonitor(
            flow.psms, flow.mining.labeler, flow.hmm
        )
        for row in evaluation.trace.rows():
            monitor.observe(row)
        stream = np.array(monitor.estimates)
        mask = batch.reliable.copy()
        # The engines may pick different alias states (the batch engine
        # re-attributes reverted spans; the causal monitor cannot), but
        # alias states carry near-identical fits, so the estimates must
        # agree within the alias tolerance on almost every instant.
        agreement = np.isclose(
            batch.estimated.values[mask], stream[mask], rtol=0.15, atol=1e-4
        ).mean()
        assert agreement > 0.95, name

    def test_same_accuracy_band(self, fitted):
        name, flow, evaluation = fitted
        batch = flow.estimate(evaluation.trace)
        monitor = StreamingPsmMonitor(
            flow.psms, flow.mining.labeler, flow.hmm
        )
        for row in evaluation.trace.rows():
            monitor.observe(row)
        batch_error = mre(batch.estimated, evaluation.power)
        stream_error = mre(np.array(monitor.estimates), evaluation.power)
        assert abs(batch_error - stream_error) < 5.0, name


class TestJsonReloadedModel:
    def test_reloaded_model_estimates_identically(self, fitted):
        name, flow, evaluation = fitted
        original = flow.estimate(evaluation.trace)
        reloaded_psms = psms_from_json(psms_to_json(flow.psms))
        labeler = labeler_from_psms(reloaded_psms)
        simulator = MultiPsmSimulator(reloaded_psms, labeler)
        reloaded = simulator.run(evaluation.trace)
        assert np.allclose(
            original.estimated.values,
            reloaded.estimated.values,
            rtol=1e-9,
        ), name
        assert (
            original.desync_instants == reloaded.desync_instants
        ), name
