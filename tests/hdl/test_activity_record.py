"""Tests of the ActivityRecord frozen-column cache."""

from __future__ import annotations

import numpy as np

from repro.hdl.simulator import ActivityRecord


def make_record():
    record = ActivityRecord(["alu", "regs"])
    record.append({"alu": 1.0, "regs": 2.0})
    record.append({"alu": 3.0})
    return record


class TestColumnCache:
    def test_column_values(self):
        record = make_record()
        assert record.column("alu").tolist() == [1.0, 3.0]
        assert record.column("regs").tolist() == [2.0, 0.0]

    def test_column_is_cached(self):
        record = make_record()
        assert record.column("alu") is record.column("alu")

    def test_column_is_immutable(self):
        record = make_record()
        column = record.column("alu")
        assert not column.flags.writeable

    def test_append_invalidates_cache(self):
        record = make_record()
        before = record.column("alu")
        record.append({"alu": 9.0, "regs": 9.0})
        after = record.column("alu")
        assert after is not before
        assert after.tolist() == [1.0, 3.0, 9.0]
        # the previously handed-out array is untouched
        assert before.tolist() == [1.0, 3.0]

    def test_total_is_cached_and_invalidated(self):
        record = make_record()
        total = record.total()
        assert total.tolist() == [3.0, 3.0]
        assert record.total() is total
        record.append({"alu": 1.0, "regs": 1.0})
        assert record.total().tolist() == [3.0, 3.0, 2.0]

    def test_backfilled_component_cache_consistent(self):
        record = ActivityRecord(["alu"])
        record.append({"alu": 1.0})
        assert record.column("alu").tolist() == [1.0]
        # a new component appears mid-simulation: zeros are backfilled
        record.append({"alu": 2.0, "late": 5.0})
        assert record.column("late").tolist() == [0.0, 5.0]
        assert record.total().tolist() == [1.0, 7.0]

    def test_empty_record_total(self):
        record = ActivityRecord([])
        assert record.total().tolist() == []
        assert len(record) == 0
