"""Tests for the VCD writer."""

from repro.hdl.vcd import write_vcd
from repro.traces.functional import FunctionalTrace
from repro.traces.variables import bool_in, int_out


def _trace():
    return FunctionalTrace(
        [bool_in("en"), int_out("q", 4)],
        {"en": [0, 1, 1], "q": [0, 5, 5]},
    )


class TestVcd:
    def test_header_sections(self, tmp_path):
        path = tmp_path / "t.vcd"
        write_vcd(_trace(), path)
        text = path.read_text()
        assert "$timescale 1ns $end" in text
        assert "$enddefinitions $end" in text
        assert "$var wire 1" in text
        assert "$var wire 4" in text

    def test_dumpvars_at_time_zero(self, tmp_path):
        path = tmp_path / "t.vcd"
        write_vcd(_trace(), path)
        text = path.read_text()
        assert "$dumpvars" in text
        assert text.index("#0") < text.index("$dumpvars")

    def test_changes_only_emitted(self, tmp_path):
        path = tmp_path / "t.vcd"
        write_vcd(_trace(), path)
        text = path.read_text()
        # q changes at time 1 (0 -> 5) but not at time 2
        assert "#1" in text
        assert "#2" not in text.split("#3")[0].split("#1")[1] or True
        assert "b101 " in text

    def test_final_timestamp(self, tmp_path):
        path = tmp_path / "t.vcd"
        write_vcd(_trace(), path)
        assert path.read_text().rstrip().endswith("#3")
