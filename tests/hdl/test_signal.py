"""Tests for registers and bit helpers."""

import pytest

from repro.hdl.signal import Register, Wire, hamming, mask_for, popcount_int


class TestHelpers:
    def test_mask_for(self):
        assert mask_for(1) == 1
        assert mask_for(8) == 255
        assert mask_for(128) == (1 << 128) - 1

    def test_mask_for_invalid(self):
        with pytest.raises(ValueError):
            mask_for(0)

    def test_popcount(self):
        assert popcount_int(0) == 0
        assert popcount_int(0b1011) == 3
        assert popcount_int((1 << 128) - 1) == 128

    def test_popcount_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount_int(-1)

    def test_hamming(self):
        assert hamming(0b1010, 0b0110) == 2
        assert hamming(5, 5) == 0


class TestRegister:
    def test_load_and_value(self):
        reg = Register("r", 8)
        reg.load(0xAB)
        assert reg.value == 0xAB

    def test_load_masks_to_width(self):
        reg = Register("r", 4)
        reg.load(0x1F)
        assert reg.value == 0xF

    def test_toggle_accounting(self):
        reg = Register("r", 8)
        reg.load(0b1111)  # 4 toggles from 0
        reg.load(0b1100)  # 2 toggles
        assert reg.collect_toggles() == 6

    def test_collect_clears(self):
        reg = Register("r", 8)
        reg.load(1)
        assert reg.collect_toggles() == 1
        assert reg.collect_toggles() == 0

    def test_same_value_no_toggles(self):
        reg = Register("r", 8, init=7)
        reg.load(7)
        assert reg.collect_toggles() == 0

    def test_reset_restores_init_without_activity(self):
        reg = Register("r", 8, init=3)
        reg.load(255)
        reg.reset()
        assert reg.value == 3
        assert reg.collect_toggles() == 0

    def test_component_label(self):
        reg = Register("r", 8, component="array")
        assert reg.component == "array"


class TestWire:
    def test_drive_masks(self):
        wire = Wire("w", 4)
        assert wire.drive(0x13) == 0x3
        assert wire.value == 0x3
