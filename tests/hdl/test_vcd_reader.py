"""Tests for the VCD reader (external-waveform import)."""

import pytest

from repro.hdl.vcd import read_vcd, write_vcd
from repro.traces.functional import FunctionalTrace
from repro.traces.variables import bool_in, int_in, int_out


def sample_trace():
    return FunctionalTrace(
        [bool_in("en"), int_in("addr", 4), int_out("q", 8)],
        {
            "en": [0, 1, 1, 1, 0],
            "addr": [0, 3, 3, 9, 9],
            "q": [0, 0, 7, 7, 255],
        },
    )


class TestRoundTrip:
    def test_values_survive(self, tmp_path):
        path = tmp_path / "t.vcd"
        original = sample_trace()
        write_vcd(original, path)
        loaded = read_vcd(path, inputs=["en", "addr"])
        assert len(loaded) == len(original)
        for i in range(len(original)):
            assert loaded.at(i) == original.at(i)

    def test_directions_follow_inputs_argument(self, tmp_path):
        path = tmp_path / "t.vcd"
        write_vcd(sample_trace(), path)
        loaded = read_vcd(path, inputs=["en", "addr"])
        assert {v.name for v in loaded.inputs} == {"en", "addr"}
        assert {v.name for v in loaded.outputs} == {"q"}

    def test_widths_preserved(self, tmp_path):
        path = tmp_path / "t.vcd"
        write_vcd(sample_trace(), path)
        loaded = read_vcd(path)
        assert loaded.spec("addr").width == 4
        assert loaded.spec("en").kind == "bool"


class TestExternalDumps:
    def test_foreign_simulator_style(self, tmp_path):
        """Nested scopes, x bits, range suffixes and held values."""
        text = """\
$date today $end
$timescale 1ns $end
$scope module top $end
$scope module dut $end
$var wire 1 ! clk $end
$var reg 4 " count [3:0] $end
$upscope $end
$upscope $end
$enddefinitions $end
#0
$dumpvars
0!
bxxxx "
$end
#1
1!
b0011 "
#3
0!
b1010 "
#4
"""
        path = tmp_path / "foreign.vcd"
        path.write_text(text)
        trace = read_vcd(path, inputs=["clk"])
        assert len(trace) == 4
        assert trace.at(0) == {"clk": 0, "count": 0}  # x -> 0
        assert trace.at(1) == {"clk": 1, "count": 3}
        assert trace.at(2) == {"clk": 1, "count": 3}  # held
        assert trace.at(3) == {"clk": 0, "count": 10}

    def test_sample_period(self, tmp_path):
        text = """\
$timescale 1ns $end
$scope module top $end
$var wire 1 ! a $end
$upscope $end
$enddefinitions $end
#0
0!
#10
1!
#20
"""
        path = tmp_path / "p.vcd"
        path.write_text(text)
        trace = read_vcd(path, sample_period=10)
        assert len(trace) == 2
        assert trace.column("a").tolist() == [0, 1]

    def test_empty_vcd_rejected(self, tmp_path):
        path = tmp_path / "empty.vcd"
        path.write_text("$enddefinitions $end\n#0\n")
        with pytest.raises(ValueError):
            read_vcd(path)
