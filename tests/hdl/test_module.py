"""Tests for the Module base class."""

import pytest

from repro.hdl.module import Module
from repro.traces.variables import bool_in, int_in, int_out


class Counter(Module):
    """8-bit counter used as a test DUT."""

    NAME = "counter"
    INPUTS = (bool_in("en"), bool_in("clr"), int_in("step", 4))
    OUTPUTS = (int_out("count", 8),)
    COMPONENT_CAPS = {"core": 1.0, "glue": 0.5}

    def __init__(self):
        super().__init__()
        self._count = self.reg("count_reg", 8, component="core")

    def step(self, inputs):
        if inputs["clr"]:
            self._count.load(0)
        elif inputs["en"]:
            self._count.load(self._count.value + inputs["step"])
            self.add_activity("glue", 1.5)
        return {"count": self._count.value}


class TestStructure:
    def test_duplicate_register_rejected(self):
        module = Counter()
        with pytest.raises(ValueError):
            module.reg("count_reg", 4)

    def test_state_bits(self):
        assert Counter().state_bits() == 8

    def test_interface_bits(self):
        assert Counter.input_bits() == 6
        assert Counter.output_bits() == 8

    def test_trace_specs_order(self):
        names = [v.name for v in Counter.trace_specs()]
        assert names == ["en", "clr", "step", "count"]

    def test_components_listed(self):
        module = Counter()
        module.step({"en": 1, "clr": 0, "step": 1})
        assert "core" in module.components


class TestBehaviour:
    def test_step_counts(self):
        module = Counter()
        assert module.step({"en": 1, "clr": 0, "step": 3})["count"] == 3
        assert module.step({"en": 1, "clr": 0, "step": 3})["count"] == 6

    def test_clear(self):
        module = Counter()
        module.step({"en": 1, "clr": 0, "step": 5})
        assert module.step({"en": 0, "clr": 1, "step": 0})["count"] == 0

    def test_reset_restores_registers(self):
        module = Counter()
        module.step({"en": 1, "clr": 0, "step": 5})
        module.reset()
        assert module.step({"en": 0, "clr": 0, "step": 0})["count"] == 0


class TestActivity:
    def test_register_activity_collected(self):
        module = Counter()
        module.step({"en": 1, "clr": 0, "step": 3})  # 0 -> 3: 2 toggles
        activity = module.collect_activity()
        assert activity["core"] == 2
        assert activity["glue"] == 1.5

    def test_collect_clears_accumulators(self):
        module = Counter()
        module.step({"en": 1, "clr": 0, "step": 3})
        module.collect_activity()
        assert module.collect_activity() == {}

    def test_idle_cycle_reports_nothing(self):
        module = Counter()
        module.step({"en": 0, "clr": 0, "step": 0})
        assert module.collect_activity() == {}

    def test_add_activity_accumulates(self):
        module = Counter()
        module.add_activity("glue", 1.0)
        module.add_activity("glue", 2.0)
        assert module.collect_activity()["glue"] == 3.0


class TestCheckInputs:
    def test_valid(self):
        values = Counter().check_inputs({"en": 1, "clr": 0, "step": 15})
        assert values == {"en": 1, "clr": 0, "step": 15}

    def test_missing_input(self):
        with pytest.raises(KeyError):
            Counter().check_inputs({"en": 1, "clr": 0})

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Counter().check_inputs({"en": 1, "clr": 0, "step": 16})

    def test_abstract_step(self):
        with pytest.raises(NotImplementedError):
            Module().step({})
