"""Tests for the cycle-based simulator."""

import pytest

from repro.hdl.module import Module
from repro.hdl.simulator import ActivityRecord, Simulator
from repro.traces.variables import bool_in, int_out


class Toggler(Module):
    NAME = "toggler"
    INPUTS = (bool_in("en"),)
    OUTPUTS = (int_out("q", 4),)

    def __init__(self):
        super().__init__()
        self._q = self.reg("q_reg", 4)

    def step(self, inputs):
        if inputs["en"]:
            self._q.load(self._q.value ^ 0xF)
            self.add_activity("late_domain", 1.0)
        return {"q": self._q.value}


class TestSimulator:
    def test_trace_records_pis_and_pos(self):
        result = Simulator(Toggler()).run([{"en": 1}, {"en": 0}, {"en": 1}])
        assert result.cycles == 3
        assert result.trace.at(0) == {"en": 1, "q": 15}
        assert result.trace.at(1) == {"en": 0, "q": 15}
        assert result.trace.at(2) == {"en": 1, "q": 0}

    def test_reset_applied_before_run(self):
        module = Toggler()
        simulator = Simulator(module)
        simulator.run([{"en": 1}])
        result = simulator.run([{"en": 0}])
        assert result.trace.at(0)["q"] == 0

    def test_no_reset_keeps_state(self):
        module = Toggler()
        simulator = Simulator(module)
        simulator.run([{"en": 1}])
        result = simulator.run([{"en": 0}], reset=False)
        assert result.trace.at(0)["q"] == 15

    def test_activity_recorded_per_cycle(self):
        result = Simulator(Toggler()).run([{"en": 1}, {"en": 0}])
        assert result.activity.column("core").tolist() == [4.0, 0.0]

    def test_activity_skipped_when_disabled(self):
        result = Simulator(Toggler(), record_activity=False).run([{"en": 1}])
        assert len(result.activity) == 0

    def test_observer_called_with_rows(self):
        seen = []
        Simulator(Toggler()).run(
            [{"en": 1}, {"en": 1}],
            observer=lambda cycle, row: seen.append((cycle, row["q"])),
        )
        assert seen == [(0, 15), (1, 0)]

    def test_invalid_input_rejected(self):
        with pytest.raises(KeyError):
            Simulator(Toggler()).run([{}])

    def test_trace_name(self):
        result = Simulator(Toggler()).run([{"en": 0}], name="custom")
        assert result.trace.name == "custom"


class TestActivityRecord:
    def test_backfills_late_components(self):
        record = ActivityRecord(["core"])
        record.append({"core": 1.0})
        record.append({"core": 2.0, "late": 5.0})
        assert record.column("late").tolist() == [0.0, 5.0]

    def test_total_sums_components(self):
        record = ActivityRecord(["a", "b"])
        record.append({"a": 1.0, "b": 2.0})
        record.append({"a": 0.5})
        assert record.total().tolist() == [3.0, 0.5]

    def test_late_domain_through_simulator(self):
        result = Simulator(Toggler()).run([{"en": 0}, {"en": 1}])
        assert result.activity.column("late_domain").tolist() == [0.0, 1.0]
