"""Tests for internal probe support (hierarchical characterisation)."""

import pytest

from repro.hdl.module import Module
from repro.hdl.simulator import Simulator
from repro.ips import Aes, Camellia
from repro.traces.variables import bool_in, int_out


class Probed(Module):
    NAME = "probed"
    INPUTS = (bool_in("en"),)
    OUTPUTS = (int_out("q", 4),)
    PROBES = (int_out("counter", 4),)

    def __init__(self):
        super().__init__()
        self._counter = self.reg("counter", 4)
        self._q = self.reg("q_reg", 4)

    def step(self, inputs):
        if inputs["en"]:
            self._counter.load(self._counter.value + 1)
            self._q.load(self._counter.value)
        return {"q": self._q.value}


class TestProbes:
    def test_probe_values_read_registers(self):
        module = Probed()
        module.step({"en": 1})
        assert module.probe_values() == {"counter": 1}

    def test_probes_excluded_by_default(self):
        result = Simulator(Probed()).run([{"en": 1}] * 3)
        assert "counter" not in result.trace

    def test_probes_included_on_request(self):
        result = Simulator(Probed()).run(
            [{"en": 1}] * 3, include_probes=True
        )
        assert result.trace.column("counter").tolist() == [1, 2, 3]

    def test_probes_not_in_interface_widths(self):
        assert Probed.input_bits() == 1
        assert Probed.output_bits() == 4

    def test_cipher_probe_declarations(self):
        assert [p.name for p in Aes.probe_specs()] == ["round_counter"]
        assert [p.name for p in Camellia.probe_specs()] == ["cycle_counter"]

    def test_camellia_probe_counts_busy_cycles(self):
        key = 0x0123456789ABCDEFFEDCBA9876543210
        stim = [
            dict(
                en=1, load_key=0, start=1, decrypt=0, mode=0,
                key=key, data=key,
            )
        ]
        stim += [
            dict(
                en=1, load_key=0, start=0, decrypt=0, mode=0,
                key=key, data=key,
            )
        ] * 21
        result = Simulator(Camellia()).run(stim, include_probes=True)
        values = result.trace.column("cycle_counter").tolist()
        assert values[:4] == [0, 1, 2, 3]
        assert max(values) == 20
