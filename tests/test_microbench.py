"""Tests of the per-stage micro-benchmark / perf-regression harness."""

from __future__ import annotations

import copy
import json

import pytest

from repro.microbench import (
    SCHEMA,
    STAGES,
    _row_throughput,
    compare_micro,
    run_micro,
    speedups_micro,
    validate_micro,
)


@pytest.fixture(scope="module")
def ram_payload():
    """One tiny micro-bench run (RAM only, single repeat)."""
    return run_micro(names=["RAM"], cycles=1000, repeats=1)


class TestRunMicro:
    def test_payload_is_valid(self, ram_payload):
        validate_micro(ram_payload)
        assert ram_payload["schema"] == SCHEMA
        assert ram_payload["long_cycles"] == 1000

    def test_every_stage_reported(self, ram_payload):
        stages = [row["stage"] for row in ram_payload["results"]]
        assert stages == list(STAGES)
        assert all(
            row["benchmark"] == "RAM" for row in ram_payload["results"]
        )

    def test_rows_have_positive_throughput(self, ram_payload):
        for row in ram_payload["results"]:
            assert row["wall_s"] > 0
            assert row["cycles"] > 0
            assert row["cycles_per_s"] > 0

    def test_long_stages_use_long_cycles(self, ram_payload):
        by_stage = {r["stage"]: r for r in ram_payload["results"]}
        assert by_stage["label"]["cycles"] == 1000
        assert by_stage["simulate_single"]["cycles"] == 1000
        assert by_stage["estimate"]["cycles"] == 1000
        # generate/join run on the long synthetic *training* pair
        assert by_stage["generate"]["cycles"] == 1000
        assert by_stage["join"]["cycles"] == 1000

    def test_payload_round_trips_as_json(self, ram_payload):
        validate_micro(json.loads(json.dumps(ram_payload)))


class TestValidate:
    def test_rejects_wrong_schema(self, ram_payload):
        bad = copy.deepcopy(ram_payload)
        bad["schema"] = "something-else/v9"
        with pytest.raises(ValueError):
            validate_micro(bad)

    def test_rejects_missing_results(self):
        with pytest.raises(ValueError):
            validate_micro({"schema": SCHEMA, "results": []})

    def test_rejects_malformed_row(self, ram_payload):
        bad = copy.deepcopy(ram_payload)
        del bad["results"][0]["cycles_per_s"]
        with pytest.raises(ValueError):
            validate_micro(bad)


class TestCompare:
    def test_self_compare_is_clean(self, ram_payload):
        assert compare_micro(ram_payload, ram_payload) == []

    def test_detects_regression(self, ram_payload):
        fast_baseline = copy.deepcopy(ram_payload)
        for row in fast_baseline["results"]:
            row["cycles_per_s"] *= 10.0
        regressions = compare_micro(
            ram_payload, fast_baseline, threshold=2.0
        )
        assert len(regressions) == len(ram_payload["results"])
        assert "RAM/mine" in regressions[0]

    def test_threshold_tolerates_noise(self, ram_payload):
        slightly_faster = copy.deepcopy(ram_payload)
        for row in slightly_faster["results"]:
            row["cycles_per_s"] *= 1.5
        assert (
            compare_micro(ram_payload, slightly_faster, threshold=2.0)
            == []
        )

    def test_unknown_baseline_rows_ignored(self, ram_payload):
        renamed = copy.deepcopy(ram_payload)
        for row in renamed["results"]:
            row["benchmark"] = "OtherIP"
        assert compare_micro(ram_payload, renamed) == []

    def test_zero_wall_baseline_skipped(self, ram_payload):
        # Tiny-scale smoke runs can record wall_s == 0 and a serialised
        # throughput of Infinity; such rows must be skipped, not divide.
        degenerate = copy.deepcopy(ram_payload)
        for row in degenerate["results"]:
            row["wall_s"] = 0.0
            row["cycles_per_s"] = float("inf")
        assert compare_micro(ram_payload, degenerate) == []
        assert compare_micro(degenerate, ram_payload) == []

    def test_missing_wall_recomputed_or_skipped(self, ram_payload):
        row = dict(ram_payload["results"][0])
        row["cycles_per_s"] = float("inf")
        row["wall_s"] = 0.5
        assert _row_throughput(row) == row["cycles"] / 0.5
        row["wall_s"] = 0.0
        assert _row_throughput(row) == 0.0
        del row["wall_s"]
        assert _row_throughput(row) == 0.0


class TestSpeedups:
    def test_self_speedup_is_one(self, ram_payload):
        ratios = speedups_micro(ram_payload, ram_payload)
        assert set(ratios) == {
            ("RAM", stage) for stage in STAGES
        }
        assert all(v == pytest.approx(1.0) for v in ratios.values())

    def test_faster_current_reports_gain(self, ram_payload):
        slow_baseline = copy.deepcopy(ram_payload)
        for row in slow_baseline["results"]:
            row["cycles_per_s"] /= 4.0
        ratios = speedups_micro(ram_payload, slow_baseline)
        assert all(v == pytest.approx(4.0) for v in ratios.values())

    def test_unusable_rows_omitted(self, ram_payload):
        degenerate = copy.deepcopy(ram_payload)
        for row in degenerate["results"]:
            row["wall_s"] = 0.0
            row["cycles_per_s"] = float("inf")
        assert speedups_micro(ram_payload, degenerate) == {}
