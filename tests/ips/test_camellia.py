"""Tests for the Camellia-128 benchmark IP (cipher + HDL core)."""

import pytest

from repro.hdl.simulator import Simulator
from repro.ips.camellia import (
    FL_ROUNDS,
    NUM_ROUNDS,
    Camellia,
    decrypt_block,
    derive_ka,
    encrypt_block,
    expand_key,
    fl,
    fl_inv,
    round_trace,
)
from repro.ips.camellia.tables import SBOX1, SBOX2, SBOX3, SBOX4

# RFC 3713 test vector (key == plaintext).
RFC_KEY = 0x0123456789ABCDEFFEDCBA9876543210
RFC_CT = 0x67673138549669730857065648EABE43


class TestTables:
    def test_sbox1_is_permutation(self):
        assert sorted(SBOX1) == list(range(256))

    def test_sbox1_known_entries(self):
        # first and last rows of the RFC 3713 table
        assert SBOX1[0] == 112
        assert SBOX1[1] == 130
        assert SBOX1[255] == 158

    def test_derived_sboxes_per_spec(self):
        for x in range(256):
            assert SBOX2[x] == ((SBOX1[x] << 1) | (SBOX1[x] >> 7)) & 0xFF
            assert SBOX3[x] == ((SBOX1[x] >> 1) | (SBOX1[x] << 7)) & 0xFF
            assert SBOX4[x] == SBOX1[((x << 1) | (x >> 7)) & 0xFF]


class TestHelpers:
    def test_fl_inverse(self):
        import random

        random.seed(9)
        for _ in range(20):
            x = random.getrandbits(64)
            k = random.getrandbits(64)
            assert fl_inv(fl(x, k), k) == x

    def test_ka_deterministic(self):
        assert derive_ka(RFC_KEY) == derive_ka(RFC_KEY)


class TestKeySchedule:
    def test_subkey_counts(self):
        schedule = expand_key(RFC_KEY)
        assert len(schedule.k) == NUM_ROUNDS
        assert len(schedule.kw) == 4
        assert len(schedule.ke) == 4

    def test_reversed_schedule(self):
        schedule = expand_key(RFC_KEY)
        rev = schedule.reversed()
        assert rev.k == tuple(reversed(schedule.k))
        assert rev.kw == (
            schedule.kw[2],
            schedule.kw[3],
            schedule.kw[0],
            schedule.kw[1],
        )
        assert rev.ke == tuple(reversed(schedule.ke))


class TestCipher:
    def test_rfc_3713_vector(self):
        assert encrypt_block(RFC_KEY, RFC_KEY) == RFC_CT

    def test_decrypt_inverts_encrypt(self):
        assert decrypt_block(RFC_CT, RFC_KEY) == RFC_KEY

    def test_random_round_trips(self):
        import random

        random.seed(13)
        for _ in range(10):
            key = random.getrandbits(128)
            block = random.getrandbits(128)
            assert decrypt_block(encrypt_block(block, key), key) == block

    def test_against_reference_library(self):
        try:
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                from cryptography.hazmat.decrepit.ciphers.algorithms import (
                    Camellia as RefCamellia,
                )
            from cryptography.hazmat.primitives.ciphers import Cipher, modes
        except ImportError:  # pragma: no cover
            pytest.skip("cryptography Camellia not available")
        import random

        random.seed(17)
        for _ in range(10):
            key = random.randbytes(16)
            block = random.randbytes(16)
            encryptor = Cipher(RefCamellia(key), modes.ECB()).encryptor()
            expected = int.from_bytes(
                encryptor.update(block) + encryptor.finalize(), "big"
            )
            got = encrypt_block(
                int.from_bytes(block, "big"), int.from_bytes(key, "big")
            )
            assert got == expected

    def test_round_trace_has_fl_cycles(self):
        snapshots, out = round_trace(RFC_KEY, expand_key(RFC_KEY))
        assert out == RFC_CT
        fl_cycles = [s for s in snapshots if s.is_fl_cycle]
        assert len(fl_cycles) == len(FL_ROUNDS)
        # 1 whitening + 18 rounds + 2 FL layers
        assert len(snapshots) == 1 + NUM_ROUNDS + 2


def stim(key, data, decrypt=0, load_key=0, start=0, en=1):
    return {
        "en": en,
        "load_key": load_key,
        "start": start,
        "decrypt": decrypt,
        "mode": 0,
        "key": key,
        "data": data,
    }


class TestModule:
    LATENCY = NUM_ROUNDS + 2  # rounds + two FL cycles

    def _run_block(self, key, data, decrypt=0):
        stimulus = [stim(key, data, decrypt, load_key=1)]
        stimulus += [stim(key, data, decrypt, start=1)]
        stimulus += [stim(key, data, decrypt)] * (self.LATENCY + 3)
        result = Simulator(Camellia()).run(stimulus)
        done = [
            i for i in range(len(result.trace)) if result.trace.at(i)["done"]
        ]
        return result, done

    def test_encrypt_matches_cipher(self):
        result, done = self._run_block(RFC_KEY, RFC_KEY)
        assert result.trace.at(done[0])["out"] == RFC_CT

    def test_decrypt_matches_cipher(self):
        result, done = self._run_block(RFC_KEY, RFC_CT, decrypt=1)
        assert result.trace.at(done[0])["out"] == RFC_KEY

    def test_latency(self):
        _, done = self._run_block(RFC_KEY, RFC_KEY)
        # start at cycle 1, 20 busy cycles, registered done
        assert done[0] == self.LATENCY + 2

    def test_disabled_core_does_nothing(self):
        stimulus = [stim(RFC_KEY, RFC_KEY, load_key=1, start=1, en=0)] * 4
        result = Simulator(Camellia()).run(stimulus)
        assert all(not result.trace.at(i)["done"] for i in range(4))

    def test_fl_cycles_spike_power(self):
        result, done = self._run_block(RFC_KEY, RFC_KEY)
        fl_activity = result.activity.column("fl_layer")
        assert (fl_activity > 0).sum() == 2

    def test_busy_power_has_high_variance(self):
        """The design property behind the paper's Camellia result."""
        import numpy as np

        result, done = self._run_block(RFC_KEY, RFC_KEY)
        busy = result.activity.total()[2 : 2 + self.LATENCY]
        assert np.std(busy) / np.mean(busy) > 0.25

    def test_interface_widths(self):
        assert Camellia.input_bits() == 262
        assert Camellia.output_bits() == 129
