"""Tests for the AES-128 benchmark IP (cipher + HDL core)."""

import pytest

from repro.hdl.simulator import Simulator
from repro.ips.aes import (
    NUM_ROUNDS,
    Aes,
    decrypt_block,
    encrypt_block,
    expand_key,
    round_states,
)
from repro.ips.aes.cipher import (
    block_to_state,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    state_to_block,
    sub_bytes,
)
from repro.ips.aes.tables import INV_SBOX, SBOX, gf_inverse, gf_mul

FIPS_KEY = 0x000102030405060708090A0B0C0D0E0F
FIPS_PT = 0x00112233445566778899AABBCCDDEEFF
FIPS_CT = 0x69C4E0D86A7B0430D8CDB78070B4C55A


class TestTables:
    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox(self):
        assert all(INV_SBOX[SBOX[v]] == v for v in range(256))

    def test_known_sbox_entries(self):
        # FIPS-197 examples
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_gf_inverse(self):
        for value in range(1, 256):
            assert gf_mul(value, gf_inverse(value)) == 1
        assert gf_inverse(0) == 0


class TestRoundOperations:
    def test_shift_rows_inverse(self):
        state = list(range(16))
        assert inv_shift_rows(shift_rows(state)) == state

    def test_mix_columns_inverse(self):
        state = list(range(16))
        assert inv_mix_columns(mix_columns(state)) == state

    def test_sub_bytes_inverse(self):
        state = list(range(16))
        assert inv_sub_bytes(sub_bytes(state)) == state

    def test_block_state_round_trip(self):
        assert state_to_block(block_to_state(FIPS_PT)) == FIPS_PT


class TestCipher:
    def test_fips_197_vector(self):
        assert encrypt_block(FIPS_PT, FIPS_KEY) == FIPS_CT

    def test_decrypt_inverts_encrypt(self):
        assert decrypt_block(FIPS_CT, FIPS_KEY) == FIPS_PT

    def test_random_round_trips(self):
        import random

        random.seed(11)
        for _ in range(10):
            key = random.getrandbits(128)
            block = random.getrandbits(128)
            assert decrypt_block(encrypt_block(block, key), key) == block

    def test_against_reference_library(self):
        try:
            from cryptography.hazmat.primitives.ciphers import (
                Cipher,
                algorithms,
                modes,
            )
        except ImportError:  # pragma: no cover
            pytest.skip("cryptography not available")
        import random

        random.seed(5)
        for _ in range(10):
            key = random.randbytes(16)
            block = random.randbytes(16)
            encryptor = Cipher(
                algorithms.AES(key), modes.ECB()
            ).encryptor()
            expected = int.from_bytes(
                encryptor.update(block) + encryptor.finalize(), "big"
            )
            got = encrypt_block(
                int.from_bytes(block, "big"), int.from_bytes(key, "big")
            )
            assert got == expected

    def test_round_states_structure(self):
        states = round_states(FIPS_PT, FIPS_KEY)
        assert len(states) == NUM_ROUNDS + 1
        assert states[-1] == FIPS_CT

    def test_key_expansion_shape(self):
        round_keys = expand_key(FIPS_KEY)
        assert len(round_keys) == NUM_ROUNDS + 1
        assert all(len(rk) == 16 for rk in round_keys)
        assert state_to_block(round_keys[0]) == FIPS_KEY


def transaction(key, data, decrypt=0, load_key=0, start=0):
    return {
        "en": 1,
        "load_key": load_key,
        "start": start,
        "decrypt": decrypt,
        "key": key,
        "data": data,
    }


class TestModule:
    def _run_block(self, key, data, decrypt=0):
        stimulus = [transaction(key, data, decrypt, load_key=1)]
        stimulus += [transaction(key, data, decrypt, start=1)]
        stimulus += [transaction(key, data, decrypt)] * (NUM_ROUNDS + 2)
        result = Simulator(Aes()).run(stimulus)
        done_cycles = [
            i for i in range(len(result.trace)) if result.trace.at(i)["done"]
        ]
        return result, done_cycles

    def test_encrypt_matches_cipher(self):
        result, done = self._run_block(FIPS_KEY, FIPS_PT)
        assert result.trace.at(done[0])["out"] == FIPS_CT

    def test_decrypt_matches_cipher(self):
        result, done = self._run_block(FIPS_KEY, FIPS_CT, decrypt=1)
        assert result.trace.at(done[0])["out"] == FIPS_PT

    def test_latency_is_ten_busy_cycles(self):
        _, done = self._run_block(FIPS_KEY, FIPS_PT)
        # start at cycle 1, 10 rounds, registered done -> cycle 12
        assert done[0] == NUM_ROUNDS + 2

    def test_done_holds_until_next_start(self):
        result, done = self._run_block(FIPS_KEY, FIPS_PT)
        assert done == list(range(done[0], len(result.trace)))

    def test_disabled_core_does_nothing(self):
        stimulus = [
            {
                "en": 0,
                "load_key": 1,
                "start": 1,
                "decrypt": 0,
                "key": FIPS_KEY,
                "data": FIPS_PT,
            }
        ] * 5
        result = Simulator(Aes()).run(stimulus)
        assert all(not result.trace.at(i)["done"] for i in range(5))

    def test_start_latches_key_if_never_loaded(self):
        stimulus = [transaction(FIPS_KEY, FIPS_PT, start=1)]
        stimulus += [transaction(FIPS_KEY, FIPS_PT)] * (NUM_ROUNDS + 2)
        result = Simulator(Aes()).run(stimulus)
        done = [
            i for i in range(len(result.trace)) if result.trace.at(i)["done"]
        ]
        assert result.trace.at(done[0])["out"] == FIPS_CT

    def test_busy_rounds_dominate_power(self):
        result, done = self._run_block(FIPS_KEY, FIPS_PT)
        activity = result.activity.total()
        busy = activity[2 : 2 + NUM_ROUNDS].mean()
        idle = activity[done[0] + 1 :].mean()
        assert busy > 5 * idle

    def test_interface_widths(self):
        assert Aes.input_bits() == 260
        assert Aes.output_bits() == 129
