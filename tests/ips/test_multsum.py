"""Tests for the MultSum (MAC) benchmark IP."""

import pytest

from repro.hdl.simulator import Simulator
from repro.ips.multsum import MultSum


def cyc(a=0, b=0, c=0, clear=0):
    return {"a": a, "b": b, "c": c, "clear": clear}


def run(cycles):
    return Simulator(MultSum()).run(cycles)


class TestBehaviour:
    def test_multiply_accumulate(self):
        result = run([cyc(3, 5, 7, clear=1), cyc(2, 10, 1)])
        assert result.trace.at(0)["result"] == 22
        assert result.trace.at(1)["result"] == 43

    def test_clear_restarts_accumulation(self):
        result = run([cyc(3, 3, 0, clear=1), cyc(1, 1, 0, clear=1)])
        assert result.trace.at(1)["result"] == 1

    def test_zero_operands_hold(self):
        result = run([cyc(4, 4, 0, clear=1), cyc(), cyc()])
        assert result.trace.at(2)["result"] == 16

    def test_overflow_wraps_32_bits(self):
        result = run(
            [cyc(0xFFFF, 0xFFFF, 0xFFFF, clear=1)]
            + [cyc(0xFFFF, 0xFFFF, 0xFFFF)] * 3
        )
        expected = 0
        for _ in range(4):
            expected = (expected + 0xFFFF * 0xFFFF + 0xFFFF) & 0xFFFFFFFF
        assert result.trace.at(3)["result"] == expected

    def test_max_single_product(self):
        result = run([cyc(0xFFFF, 0xFFFF, 0, clear=1)])
        assert result.trace.at(0)["result"] == 0xFFFF * 0xFFFF


class TestPowerBehaviour:
    def test_zero_stream_is_cheap(self):
        result = run([cyc(), cyc(), cyc(0xABCD, 0x1234, 0x9999)])
        activity = result.activity.total()
        assert activity[1] < activity[2]

    def test_multiplier_activity_tracks_operand_weight(self):
        light = run([cyc(1, 1, 0, clear=1), cyc(1, 1, 0)])
        heavy = run(
            [cyc(0xFFFF, 0xFFFF, 0, clear=1), cyc(0xFFFF, 0x7FFF, 0)]
        )
        assert (
            heavy.activity.column("multiplier")[1]
            > light.activity.column("multiplier")[1]
        )


class TestStructure:
    def test_interface_widths(self):
        assert MultSum.input_bits() == 49
        assert MultSum.output_bits() == 32
