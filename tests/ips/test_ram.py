"""Tests for the RAM benchmark IP."""

import pytest

from repro.hdl.simulator import Simulator
from repro.ips.ram import WORDS, Ram


def idle(**overrides):
    row = {"rst": 0, "cs": 1, "en": 0, "we": 0, "addr": 0, "wdata": 0}
    row.update(overrides)
    return row


def write(addr, data):
    return idle(en=1, we=1, addr=addr, wdata=data)


def read(addr):
    return idle(en=1, we=0, addr=addr)


class TestBehaviour:
    def test_write_then_read(self):
        result = Simulator(Ram()).run(
            [write(5, 0xDEADBEEF), read(5)]
        )
        assert result.trace.at(1)["rdata"] == 0xDEADBEEF

    def test_write_through_on_rdata(self):
        result = Simulator(Ram()).run([write(1, 0x1234)])
        assert result.trace.at(0)["rdata"] == 0x1234

    def test_independent_addresses(self):
        result = Simulator(Ram()).run(
            [write(0, 111), write(1, 222), read(0), read(1)]
        )
        assert result.trace.at(2)["rdata"] == 111
        assert result.trace.at(3)["rdata"] == 222

    def test_rdata_holds_when_idle(self):
        result = Simulator(Ram()).run([write(2, 77), idle(), idle()])
        assert result.trace.at(2)["rdata"] == 77

    def test_chip_select_gates_access(self):
        result = Simulator(Ram()).run(
            [write(3, 99), idle(cs=0, en=1, we=0, addr=3)]
        )
        # with cs low the read does not happen; rdata holds the write
        assert result.trace.at(1)["rdata"] == 99

    def test_reset_clears_rdata(self):
        result = Simulator(Ram()).run([write(3, 99), idle(rst=1)])
        assert result.trace.at(1)["rdata"] == 0

    def test_full_address_space(self):
        stimulus = [write(a, a + 1) for a in range(WORDS)]
        stimulus += [read(a) for a in range(WORDS)]
        result = Simulator(Ram()).run(stimulus)
        for a in range(WORDS):
            assert result.trace.at(WORDS + a)["rdata"] == a + 1


class TestPowerBehaviour:
    def test_idle_cheaper_than_active(self):
        result = Simulator(Ram()).run(
            [idle(), idle(), write(0, 0xFFFFFFFF), read(0)]
        )
        activity = result.activity.total()
        assert activity[1] < activity[2]
        assert activity[1] < activity[3]

    def test_write_power_tracks_data_weight(self):
        heavy = Simulator(Ram()).run(
            [write(0, 0), write(0, 0xFFFFFFFF)]
        ).activity.total()[1]
        light = Simulator(Ram()).run(
            [write(0, 0), write(0, 1)]
        ).activity.total()[1]
        assert heavy > light


class TestStructure:
    def test_interface_widths(self):
        assert Ram.input_bits() == 44
        assert Ram.output_bits() == 32

    def test_memory_elements(self):
        assert Ram().state_bits() >= WORDS * 32
