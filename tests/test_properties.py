"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attributes import PowerAttributes
from repro.core.mergeability import (
    MergePolicy,
    single_observation_t_test,
    variance_f_test,
    welch_t_test,
)
from repro.core.mining import AssertionMiner, MinerConfig
from repro.core.psm import reset_state_ids
from repro.core.xu import mine_patterns
from repro.core.propositions import Proposition, PropositionTrace, VarEqualsConst
from repro.core.generator import generate_psm
from repro.traces.functional import FunctionalTrace
from repro.traces.power import PowerTrace
from repro.traces.variables import bool_in, int_in

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
small_trace = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 3), st.integers(0, 3)),
    min_size=1,
    max_size=48,
)

prop_ids = st.lists(st.integers(0, 3), min_size=0, max_size=40)

samples = st.lists(
    st.floats(0.0, 100.0, allow_nan=False), min_size=2, max_size=30
)


def build_trace(rows):
    return FunctionalTrace(
        [bool_in("en"), int_in("a", 2), int_in("b", 2)],
        {
            "en": [r[0] for r in rows],
            "a": [r[1] for r in rows],
            "b": [r[2] for r in rows],
        },
    )


def prop_trace(ids):
    universe = [
        Proposition(f"p_{i}", [VarEqualsConst("x", i)]) for i in range(4)
    ]
    return universe, PropositionTrace([universe[i] for i in ids])


# ----------------------------------------------------------------------
# miner invariants
# ----------------------------------------------------------------------
class TestMinerProperties:
    @SETTINGS
    @given(small_trace)
    def test_exactly_one_proposition_holds_everywhere(self, rows):
        trace = build_trace(rows)
        miner = AssertionMiner(
            MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0)
        )
        result = miner.mine(trace)
        for i in range(len(trace)):
            holding = [
                p for p in result.propositions if p.evaluate(trace.at(i))
            ]
            assert len(holding) == 1
            assert holding[0] is result.proposition_trace[i]

    @SETTINGS
    @given(small_trace)
    def test_labeler_replays_training_exactly(self, rows):
        trace = build_trace(rows)
        miner = AssertionMiner(
            MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0)
        )
        result = miner.mine(trace)
        assert result.labeler.label(trace) == list(result.proposition_trace)

    @SETTINGS
    @given(small_trace)
    def test_batch_and_single_labelling_agree(self, rows):
        trace = build_trace(rows)
        miner = AssertionMiner(
            MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0)
        )
        result = miner.mine(trace)
        batch = result.labeler.label(trace)
        for i in range(len(trace)):
            assert result.labeler.label_assignment(trace.at(i)) is batch[i]


# ----------------------------------------------------------------------
# XU automaton invariants
# ----------------------------------------------------------------------
class TestXuProperties:
    @SETTINGS
    @given(prop_ids)
    def test_patterns_are_ordered_and_disjoint(self, ids):
        _, gamma = prop_trace(ids)
        mined = mine_patterns(gamma)
        cursor = -1
        for pattern in mined:
            assert pattern.start > cursor
            assert pattern.stop >= pattern.start
            assert pattern.stop < len(gamma)
            cursor = pattern.stop

    @SETTINGS
    @given(prop_ids)
    def test_pattern_bodies_hold_the_left_proposition(self, ids):
        _, gamma = prop_trace(ids)
        for pattern in mine_patterns(gamma):
            left = pattern.assertion.first_proposition()
            for t in range(pattern.start, pattern.stop + 1):
                assert gamma[t] is left
            exit_prop = pattern.assertion.exit_proposition()
            assert gamma.at(pattern.stop + 1) is exit_prop

    @SETTINGS
    @given(prop_ids)
    def test_generator_builds_valid_chain(self, ids):
        reset_state_ids()
        _, gamma = prop_trace(ids)
        power = PowerTrace(np.ones(len(gamma)))
        psm = generate_psm(gamma, power)
        psm.validate()
        assert psm.is_chain()
        assert len(psm.transitions) == max(len(psm) - 1, 0)


# ----------------------------------------------------------------------
# statistics invariants
# ----------------------------------------------------------------------
class TestStatisticsProperties:
    @SETTINGS
    @given(samples, samples)
    def test_pooling_matches_direct_computation(self, xs, ys):
        both = np.array(xs + ys)
        parts = [
            PowerAttributes(
                float(np.mean(xs)), float(np.std(xs)), len(xs)
            ),
            PowerAttributes(
                float(np.mean(ys)), float(np.std(ys)), len(ys)
            ),
        ]
        pooled = PowerAttributes.pooled(parts)
        assert pooled.mu == pytest.approx(float(np.mean(both)), abs=1e-9)
        assert pooled.sigma == pytest.approx(
            float(np.std(both)), abs=1e-6
        )

    @SETTINGS
    @given(samples, samples)
    def test_welch_p_value_in_unit_interval(self, xs, ys):
        a = PowerAttributes(float(np.mean(xs)), float(np.std(xs)), len(xs))
        b = PowerAttributes(float(np.mean(ys)), float(np.std(ys)), len(ys))
        assert 0.0 <= welch_t_test(a, b) <= 1.0
        assert 0.0 <= variance_f_test(a, b) <= 1.0

    @SETTINGS
    @given(
        st.floats(0.0, 100.0, allow_nan=False),
        samples,
    )
    def test_single_observation_p_value_in_unit_interval(self, x, ys):
        sample = PowerAttributes(
            float(np.mean(ys)), float(np.std(ys)), len(ys)
        )
        assert 0.0 <= single_observation_t_test(x, sample) <= 1.0

    @SETTINGS
    @given(samples)
    def test_merge_is_reflexive_for_low_variance(self, xs):
        attrs = PowerAttributes(
            float(np.mean(xs)), float(np.std(xs)), len(xs)
        )
        policy = MergePolicy(max_cv=None)
        assert policy.mergeable_attributes(attrs, attrs)

    @SETTINGS
    @given(samples, samples)
    def test_merge_is_symmetric(self, xs, ys):
        a = PowerAttributes(float(np.mean(xs)), float(np.std(xs)), len(xs))
        b = PowerAttributes(float(np.mean(ys)), float(np.std(ys)), len(ys))
        policy = MergePolicy(max_cv=None)
        assert policy.mergeable_attributes(a, b) == policy.mergeable_attributes(
            b, a
        )


# ----------------------------------------------------------------------
# end-to-end invariant: training replay
# ----------------------------------------------------------------------
class TestFlowProperties:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(2, 6)),
            min_size=2,
            max_size=10,
        )
    )
    def test_estimates_are_finite_and_nonnegative(self, pattern):
        from repro.core.pipeline import FlowConfig, PsmFlow

        reset_state_ids()
        values = []
        for mode, count in pattern:
            values.extend([mode] * count)
        trace = FunctionalTrace([int_in("x", 2)], {"x": values})
        levels = {0: 1.0, 1: 5.0, 2: 2.0}
        power = PowerTrace([levels[v] for v in values])
        config = FlowConfig(
            miner=MinerConfig(min_avg_run=1.0, max_chatter_fraction=1.0),
            merge=MergePolicy(max_cv=None),
        )
        flow = PsmFlow(config).fit([trace], [power])
        result = flow.estimate(trace)
        assert np.all(np.isfinite(result.estimated.values))
        assert np.all(result.estimated.values >= 0.0)
        assert len(result.state_sequence) == len(trace)
