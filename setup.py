"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
``pip install -e .`` also works on offline machines where pip falls back
to the legacy (non-PEP-517) code path.
"""

from setuptools import setup

setup()
